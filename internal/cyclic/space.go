package cyclic

import (
	"fmt"
	"net/netip"
)

// Space maps a linear index onto an (address, port) probe target, so a single
// Cycle can cover a multi-port scan of an address range — the "sets of cyclic
// groups that cover targeted IPs and ports" of the paper's scan engine.
//
// The index is interpreted as port-major: consecutive indices visit the same
// port across different addresses before moving to the next port. Combined
// with the cycle's pseudorandom order this detail is invisible to consumers,
// but it keeps the mapping trivially invertible.
type Space struct {
	base  netip.Addr // first address, must be IPv4
	hosts uint64     // number of addresses
	ports []uint16   // ports to probe on every address
}

// NewSpace builds a probe space over `hosts` consecutive IPv4 addresses
// starting at base, crossed with the given ports.
func NewSpace(base netip.Addr, hosts uint64, ports []uint16) (*Space, error) {
	if !base.Is4() {
		return nil, fmt.Errorf("cyclic: base address %v is not IPv4", base)
	}
	if hosts == 0 || len(ports) == 0 {
		return nil, ErrEmptySpace
	}
	if hosts > 1<<32 {
		return nil, fmt.Errorf("cyclic: host count %d exceeds IPv4 space", hosts)
	}
	ps := make([]uint16, len(ports))
	copy(ps, ports)
	return &Space{base: base, hosts: hosts, ports: ps}, nil
}

// NewPrefixSpace builds a probe space over every address in an IPv4 prefix.
func NewPrefixSpace(prefix netip.Prefix, ports []uint16) (*Space, error) {
	if !prefix.Addr().Is4() {
		return nil, fmt.Errorf("cyclic: prefix %v is not IPv4", prefix)
	}
	hosts := uint64(1) << (32 - prefix.Bits())
	return NewSpace(prefix.Masked().Addr(), hosts, ports)
}

// Size returns the total number of (address, port) targets.
func (s *Space) Size() uint64 { return s.hosts * uint64(len(s.ports)) }

// Hosts returns the number of addresses covered.
func (s *Space) Hosts() uint64 { return s.hosts }

// Ports returns the port list (shared; do not mutate).
func (s *Space) Ports() []uint16 { return s.ports }

// Target maps index i in [0, Size()) to its (address, port) pair.
func (s *Space) Target(i uint64) (netip.Addr, uint16) {
	host := i % s.hosts
	port := s.ports[i/s.hosts]
	return addAddr(s.base, host), port
}

// Index is the inverse of Target. ok is false if the pair is outside the space.
func (s *Space) Index(addr netip.Addr, port uint16) (uint64, bool) {
	if !addr.Is4() {
		return 0, false
	}
	off, ok := subAddr(addr, s.base)
	if !ok || off >= s.hosts {
		return 0, false
	}
	for pi, p := range s.ports {
		if p == port {
			return uint64(pi)*s.hosts + off, true
		}
	}
	return 0, false
}

// Iterator couples a Space with a Cycle to yield probe targets in
// pseudorandom order with complete coverage.
type Iterator struct {
	space *Space
	cycle *Cycle
}

// NewIterator creates a pseudorandom iterator over the space using the seed.
func NewIterator(space *Space, seed uint64) (*Iterator, error) {
	c, err := New(space.Size(), seed)
	if err != nil {
		return nil, err
	}
	return &Iterator{space: space, cycle: c}, nil
}

// NewShardedIterator creates shard `shard` of `shards` iterators over the
// space; the shards jointly cover every target exactly once.
func NewShardedIterator(space *Space, seed uint64, shard, shards int) (*Iterator, error) {
	c, err := NewShard(space.Size(), seed, shard, shards)
	if err != nil {
		return nil, err
	}
	return &Iterator{space: space, cycle: c}, nil
}

// Next returns the next probe target. ok is false when coverage is complete.
func (it *Iterator) Next() (addr netip.Addr, port uint16, ok bool) {
	i, ok := it.cycle.Next()
	if !ok {
		return netip.Addr{}, 0, false
	}
	a, p := it.space.Target(i)
	return a, p, true
}

// Done reports whether the iterator has covered its whole shard.
func (it *Iterator) Done() bool { return it.cycle.Done() }

// Reset rewinds the iterator to the start of its coverage cycle.
func (it *Iterator) Reset() { it.cycle.Reset() }

// Emitted returns the number of targets produced so far.
func (it *Iterator) Emitted() uint64 { return it.cycle.Emitted() }

// State captures the iterator's position for checkpointing.
func (it *Iterator) State() CycleState { return it.cycle.State() }

// Restore repositions the iterator to a previously captured state. The
// iterator must have been constructed over the same space with the same seed
// and sharding as the one that produced the state.
func (it *Iterator) Restore(st CycleState) { it.cycle.Restore(st) }

// Space returns the underlying probe space.
func (it *Iterator) Space() *Space { return it.space }

// addAddr returns base + off as an IPv4 address (wrapping at 2^32).
func addAddr(base netip.Addr, off uint64) netip.Addr {
	b := base.As4()
	v := uint64(b[0])<<24 | uint64(b[1])<<16 | uint64(b[2])<<8 | uint64(b[3])
	v = (v + off) & 0xFFFFFFFF
	return netip.AddrFrom4([4]byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)})
}

// subAddr returns a - b when a >= b in address order.
func subAddr(a, b netip.Addr) (uint64, bool) {
	av, bv := addrVal(a), addrVal(b)
	if av < bv {
		return 0, false
	}
	return av - bv, true
}

func addrVal(a netip.Addr) uint64 {
	b := a.As4()
	return uint64(b[0])<<24 | uint64(b[1])<<16 | uint64(b[2])<<8 | uint64(b[3])
}
