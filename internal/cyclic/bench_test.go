package cyclic

import (
	"net/netip"
	"testing"
)

func BenchmarkCycleNext(b *testing.B) {
	c, err := New(1<<32, 42) // full IPv4-sized space
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok := c.Next(); !ok {
			c.Reset()
		}
	}
}

func BenchmarkIteratorNext(b *testing.B) {
	space, err := NewPrefixSpace(netip.MustParsePrefix("10.0.0.0/16"), allBenchPorts())
	if err != nil {
		b.Fatal(err)
	}
	it, err := NewIterator(space, 7)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, ok := it.Next(); !ok {
			it.Reset()
		}
	}
}

func BenchmarkNewCycleSetup(b *testing.B) {
	// Prime search + generator derivation for a 65K-port /16 space.
	for i := 0; i < b.N; i++ {
		if _, err := New(uint64(1<<16)*65535, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func allBenchPorts() []uint16 {
	ports := make([]uint16, 100)
	for i := range ports {
		ports[i] = uint16(i + 1)
	}
	return ports
}
