package cyclic

import (
	"testing"
	"testing/quick"
)

func TestIsPrimeKnownValues(t *testing.T) {
	primes := []uint64{2, 3, 5, 7, 11, 13, 65537, 4294967311, 1000000007}
	for _, p := range primes {
		if !isPrime(p) {
			t.Errorf("isPrime(%d) = false, want true", p)
		}
	}
	composites := []uint64{0, 1, 4, 6, 9, 15, 65536, 4294967296, 1000000008,
		3215031751} // strong pseudoprime to bases 2,3,5,7
	for _, c := range composites {
		if isPrime(c) {
			t.Errorf("isPrime(%d) = true, want false", c)
		}
	}
}

func TestNextPrime(t *testing.T) {
	cases := []struct{ in, want uint64 }{
		{0, 2}, {2, 2}, {3, 3}, {4, 5}, {14, 17}, {65536, 65537},
		{100, 101}, {1 << 20, 1048583},
	}
	for _, c := range cases {
		if got := nextPrime(c.in); got != c.want {
			t.Errorf("nextPrime(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestMulmodNoOverflow(t *testing.T) {
	const m = 1<<61 - 1
	a, b := uint64(1)<<60, uint64(1)<<60+12345
	got := mulmod(a, b, m)
	// Verify via repeated squaring identity: (2^60 * (2^60+k)) mod m.
	// 2^61 ≡ 1 (mod 2^61-1), so 2^60 ≡ inverse of 2 → 2^120 = 2^(61*1+59) ≡ 2^59.
	want := powmod(2, 119, m) // 2^60 * 2^59... compute directly instead:
	want = mulmod(powmod(2, 60, m), (uint64(1)<<60+12345)%m, m)
	if got != want {
		t.Fatalf("mulmod = %d, want %d", got, want)
	}
}

func TestPowmodKnown(t *testing.T) {
	if got := powmod(2, 10, 1000); got != 24 {
		t.Fatalf("powmod(2,10,1000) = %d, want 24", got)
	}
	if got := powmod(5, 0, 7); got != 1 {
		t.Fatalf("powmod(5,0,7) = %d, want 1", got)
	}
	if got := powmod(5, 3, 1); got != 0 {
		t.Fatalf("powmod mod 1 = %d, want 0", got)
	}
}

func TestCycleFullCoverage(t *testing.T) {
	for _, n := range []uint64{1, 2, 3, 10, 100, 4096, 65536} {
		for seed := uint64(0); seed < 3; seed++ {
			c, err := New(n, seed)
			if err != nil {
				t.Fatalf("New(%d, %d): %v", n, seed, err)
			}
			seen := make([]bool, n)
			count := uint64(0)
			for {
				v, ok := c.Next()
				if !ok {
					break
				}
				if v >= n {
					t.Fatalf("n=%d seed=%d: value %d out of range", n, seed, v)
				}
				if seen[v] {
					t.Fatalf("n=%d seed=%d: value %d repeated", n, seed, v)
				}
				seen[v] = true
				count++
			}
			if count != n {
				t.Fatalf("n=%d seed=%d: emitted %d values, want %d", n, seed, count, n)
			}
		}
	}
}

func TestCycleSeedsDiffer(t *testing.T) {
	const n = 1000
	a, _ := New(n, 1)
	b, _ := New(n, 2)
	same := 0
	for i := 0; i < 100; i++ {
		va, _ := a.Next()
		vb, _ := b.Next()
		if va == vb {
			same++
		}
	}
	if same > 20 {
		t.Fatalf("seeds 1 and 2 agree on %d/100 positions; orders should differ", same)
	}
}

func TestCycleDeterministic(t *testing.T) {
	a, _ := New(5000, 42)
	b, _ := New(5000, 42)
	for i := 0; i < 5000; i++ {
		va, oka := a.Next()
		vb, okb := b.Next()
		if va != vb || oka != okb {
			t.Fatalf("same seed diverged at step %d: %d vs %d", i, va, vb)
		}
	}
}

func TestCycleReset(t *testing.T) {
	c, _ := New(100, 7)
	var first []uint64
	for i := 0; i < 10; i++ {
		v, _ := c.Next()
		first = append(first, v)
	}
	c.Reset()
	for i := 0; i < 10; i++ {
		v, _ := c.Next()
		if v != first[i] {
			t.Fatalf("after Reset, step %d = %d, want %d", i, v, first[i])
		}
	}
}

func TestShardsPartitionSpace(t *testing.T) {
	const n = 10007
	for _, shards := range []int{2, 3, 7} {
		seen := make([]int, n)
		for s := 0; s < shards; s++ {
			c, err := NewShard(n, 99, s, shards)
			if err != nil {
				t.Fatalf("NewShard: %v", err)
			}
			for {
				v, ok := c.Next()
				if !ok {
					break
				}
				seen[v]++
			}
		}
		for v, k := range seen {
			if k != 1 {
				t.Fatalf("shards=%d: value %d seen %d times, want 1", shards, v, k)
			}
		}
	}
}

func TestNewErrors(t *testing.T) {
	if _, err := New(0, 1); err != ErrEmptySpace {
		t.Fatalf("New(0) err = %v, want ErrEmptySpace", err)
	}
	if _, err := NewShard(10, 1, 3, 3); err == nil {
		t.Fatal("NewShard with shard==shards should error")
	}
	if _, err := NewShard(10, 1, -1, 3); err == nil {
		t.Fatal("NewShard with negative shard should error")
	}
	if _, err := New(1<<62, 1); err == nil {
		t.Fatal("New with oversized space should error")
	}
}

func TestCoveragePropertyQuick(t *testing.T) {
	f := func(nRaw uint16, seed uint64) bool {
		n := uint64(nRaw%2000) + 1
		c, err := New(n, seed)
		if err != nil {
			return false
		}
		seen := make(map[uint64]bool, n)
		for {
			v, ok := c.Next()
			if !ok {
				break
			}
			if v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return uint64(len(seen)) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestGeneratorIsPrimitiveRoot(t *testing.T) {
	c, _ := New(65536, 5)
	p, g := c.Prime(), c.Generator()
	if p != 65537 {
		t.Fatalf("Prime() = %d, want 65537", p)
	}
	// g must not have order dividing (p-1)/q for any prime factor q of p-1.
	for _, q := range factorize(p - 1) {
		if powmod(g, (p-1)/q, p) == 1 {
			t.Fatalf("generator %d has small order (factor %d)", g, q)
		}
	}
}

func TestFactorize(t *testing.T) {
	cases := []struct {
		n    uint64
		want []uint64
	}{
		{2, []uint64{2}},
		{12, []uint64{2, 3}},
		{65536, []uint64{2}},
		{1048582, []uint64{2, 29, 101, 179}},
		{30, []uint64{2, 3, 5}},
	}
	for _, c := range cases {
		got := factorize(c.n)
		if len(got) != len(c.want) {
			t.Fatalf("factorize(%d) = %v, want %v", c.n, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("factorize(%d) = %v, want %v", c.n, got, c.want)
			}
		}
	}
}
