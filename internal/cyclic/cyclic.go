// Package cyclic implements ZMap-style pseudorandom address-space iteration.
//
// A scan of n targets is performed by iterating the multiplicative group of
// integers modulo a prime p > n. The group is cyclic, so repeatedly
// multiplying by a generator g visits every element of [1, p-1] exactly once
// in a pseudorandom order; elements larger than n are skipped. This gives the
// two properties Internet-wide scanning needs: complete coverage with no
// repeats, and probes spread uniformly across networks and time so no single
// destination network sees a burst (Durumeric et al., USENIX Security 2013).
//
// Cycles are cheap to shard: shard i of m iterates x, x*g^m, x*(g^m)^2, ...
// starting from g^i, partitioning the space across scanning processes with no
// coordination.
package cyclic

import (
	"errors"
	"fmt"
	"math/bits"
)

// ErrEmptySpace is returned when a cycle over zero elements is requested.
var ErrEmptySpace = errors.New("cyclic: empty target space")

// mulmod returns (a*b) mod m without overflow for any 64-bit operands.
func mulmod(a, b, m uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	_, rem := bits.Div64(hi%m, lo, m)
	return rem
}

// powmod returns (b^e) mod m.
func powmod(b, e, m uint64) uint64 {
	result := uint64(1 % m)
	b %= m
	for e > 0 {
		if e&1 == 1 {
			result = mulmod(result, b, m)
		}
		b = mulmod(b, b, m)
		e >>= 1
	}
	return result
}

// isPrime reports whether n is prime using a deterministic Miller-Rabin test
// valid for all 64-bit integers.
func isPrime(n uint64) bool {
	if n < 2 {
		return false
	}
	for _, p := range []uint64{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37} {
		if n == p {
			return true
		}
		if n%p == 0 {
			return false
		}
	}
	d := n - 1
	r := 0
	for d&1 == 0 {
		d >>= 1
		r++
	}
	// These witnesses are sufficient for all n < 2^64.
	for _, a := range []uint64{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37} {
		x := powmod(a, d, n)
		if x == 1 || x == n-1 {
			continue
		}
		composite := true
		for i := 0; i < r-1; i++ {
			x = mulmod(x, x, n)
			if x == n-1 {
				composite = false
				break
			}
		}
		if composite {
			return false
		}
	}
	return true
}

// nextPrime returns the smallest prime >= n.
func nextPrime(n uint64) uint64 {
	if n <= 2 {
		return 2
	}
	if n&1 == 0 {
		n++
	}
	for !isPrime(n) {
		n += 2
	}
	return n
}

// factorize returns the distinct prime factors of n by trial division. It is
// only used on p-1 for scan-space-sized primes, where it completes quickly.
func factorize(n uint64) []uint64 {
	var fs []uint64
	for _, p := range []uint64{2, 3} {
		if n%p == 0 {
			fs = append(fs, p)
			for n%p == 0 {
				n /= p
			}
		}
	}
	for d := uint64(5); d*d <= n; d += 2 {
		if n%d == 0 {
			fs = append(fs, d)
			for n%d == 0 {
				n /= d
			}
		}
	}
	if n > 1 {
		fs = append(fs, n)
	}
	return fs
}

// isGenerator reports whether g generates the multiplicative group mod prime
// p, given the distinct prime factors of p-1.
func isGenerator(g, p uint64, factors []uint64) bool {
	if g%p == 0 {
		return false
	}
	for _, q := range factors {
		if powmod(g, (p-1)/q, p) == 1 {
			return false
		}
	}
	return true
}

// Cycle iterates a target space of size N in pseudorandom order.
type Cycle struct {
	n       uint64 // space size; emitted values are in [0, n)
	p       uint64 // prime > n
	g       uint64 // generator of (Z/pZ)*
	start   uint64 // first group element
	cur     uint64
	stride  uint64 // multiplier per step (g, or g^m when sharded)
	emitted uint64 // values emitted so far
	total   uint64 // values this cycle will emit before wrapping
	steps   uint64 // group steps taken (for skip accounting)
	maxStep uint64 // group steps before the cycle is exhausted
}

// New returns a cycle over [0, n) whose visit order is determined by seed.
// Different seeds give different generators and starting points.
func New(n uint64, seed uint64) (*Cycle, error) {
	return NewShard(n, seed, 0, 1)
}

// NewShard returns shard `shard` of `shards` of the cycle over [0, n).
// All shards with the same n and seed jointly emit every element of [0, n)
// exactly once. shard must be in [0, shards).
func NewShard(n uint64, seed uint64, shard, shards int) (*Cycle, error) {
	if n == 0 {
		return nil, ErrEmptySpace
	}
	if shards <= 0 || shard < 0 || shard >= shards {
		return nil, fmt.Errorf("cyclic: invalid shard %d of %d", shard, shards)
	}
	if n >= 1<<62 {
		return nil, fmt.Errorf("cyclic: space size %d too large", n)
	}
	if n == 1 {
		// The group mod 2 is trivial; emit the single element directly.
		c := &Cycle{n: 1, p: 2, g: 1, start: 1, cur: 1, stride: 1, total: 1}
		if shard == 0 {
			c.maxStep = 1
		}
		return c, nil
	}
	p := nextPrime(n + 1)
	factors := factorize(p - 1)
	// Deterministically derive a generator from the seed: probe candidates
	// starting at a seed-derived offset.
	g := uint64(0)
	for cand := 2 + seed%(p-2); ; cand++ {
		c := cand%(p-1) + 1
		if c < 2 {
			continue
		}
		if isGenerator(c, p, factors) {
			g = c
			break
		}
	}
	// Starting element: g^(seed mod (p-1) + 1) so distinct seeds start at
	// distinct group elements, then offset by the shard index.
	exp := seed%(p-1) + 1
	start := powmod(g, exp, p)
	for s := 0; s < shard; s++ {
		start = mulmod(start, g, p)
	}
	stride := powmod(g, uint64(shards), p)

	// Group order is p-1; shard s visits ceil((p-1-s)/shards) elements.
	order := p - 1
	maxStep := order / uint64(shards)
	if uint64(shard) < order%uint64(shards) {
		maxStep++
	}
	c := &Cycle{n: n, p: p, g: g, start: start, cur: start, stride: stride, maxStep: maxStep}
	c.total = c.countEmitted()
	return c, nil
}

// countEmitted computes how many of this shard's group elements map into
// [0, n) — exact for unsharded cycles, and computed by a full dry pass for
// sharded ones only when n is small; otherwise it is set lazily.
func (c *Cycle) countEmitted() uint64 {
	if c.stride == c.g && c.maxStep == c.p-1 {
		return c.n // unsharded: group is [1, p-1], exactly n values are <= n
	}
	return 0 // unknown for shards; Next reports done via step exhaustion
}

// N returns the size of the target space.
func (c *Cycle) N() uint64 { return c.n }

// Prime returns the group modulus (useful for tests and diagnostics).
func (c *Cycle) Prime() uint64 { return c.p }

// Generator returns the group generator in use.
func (c *Cycle) Generator() uint64 { return c.g }

// Next returns the next element of [0, n) in the cycle's pseudorandom order.
// ok is false once the cycle (or this shard of it) has been exhausted.
func (c *Cycle) Next() (v uint64, ok bool) {
	for c.steps < c.maxStep {
		x := c.cur
		c.cur = mulmod(c.cur, c.stride, c.p)
		c.steps++
		if x <= c.n {
			c.emitted++
			return x - 1, true
		}
	}
	return 0, false
}

// Emitted returns how many values this cycle has produced.
func (c *Cycle) Emitted() uint64 { return c.emitted }

// Done reports whether the cycle is exhausted.
func (c *Cycle) Done() bool { return c.steps >= c.maxStep }

// Reset rewinds the cycle to its starting point.
func (c *Cycle) Reset() {
	c.cur = c.start
	c.steps = 0
	c.emitted = 0
}

// CycleState is the serializable iteration position of a Cycle. The group
// parameters (prime, generator, start, stride) are re-derived from the same
// (n, seed, shard, shards) on restore, so only the moving parts are captured.
type CycleState struct {
	Cur     uint64 `json:"cur"`
	Steps   uint64 `json:"steps"`
	Emitted uint64 `json:"emitted"`
}

// State captures the cycle's current position for checkpointing.
func (c *Cycle) State() CycleState {
	return CycleState{Cur: c.cur, Steps: c.steps, Emitted: c.emitted}
}

// Restore rewinds or fast-forwards the cycle to a previously captured
// position. The cycle must have been constructed with the same parameters
// (n, seed, shard, shards) that produced the state.
func (c *Cycle) Restore(st CycleState) {
	c.cur = st.Cur
	c.steps = st.Steps
	c.emitted = st.Emitted
}
