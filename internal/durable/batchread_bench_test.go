package durable

import (
	"fmt"
	"testing"
	"time"

	"censysmap/internal/journal"
)

// benchSaveDir saves a store with many segments and returns its directory.
func benchSaveDir(b *testing.B, entities, eventsEach, recsPerSeg int) string {
	b.Helper()
	dir := b.TempDir()
	s := journal.NewPartitioned(8)
	base := time.Date(2026, 3, 1, 0, 0, 0, 0, time.UTC)
	payload := []byte(`{"service":{"port":443,"transport":"tcp","protocol":"HTTP","tls":true,"banner":"HTTP/1.1 200 OK\r\nServer: nginx/1.24.0","attributes":{"http.server":"nginx/1.24.0","http.title":"Admin Console"},"method":"refresh","verified":true,"first_seen":"2026-03-01T08:30:00Z","last_seen":"2026-03-02T10:30:00Z","source_pop":"us-east-1"}}`)
	for i := 0; i < entities; i++ {
		id := fmt.Sprintf("bench-host-%04d", i)
		for e := 0; e < eventsEach; e++ {
			if _, err := s.Append(id, base.Add(time.Duration(e)*time.Minute), "service_changed", payload); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := s.AppendSnapshot(id, base.Add(time.Duration(eventsEach)*time.Minute), []byte(`{"state":"up"}`)); err != nil {
			b.Fatal(err)
		}
	}
	stores := []NamedStore{{Name: "journal", Store: s}}
	if err := Save(dir, stores, []byte(`{}`), SaveOptions{RecordsPerSegment: recsPerSeg}); err != nil {
		b.Fatal(err)
	}
	return dir
}

// BenchmarkSegmentLoad compares the batched shared-buffer reader against the
// legacy per-file os.ReadFile loop on a full recovery.
func BenchmarkSegmentLoad(b *testing.B) {
	for _, mode := range []struct {
		name    string
		perFile bool
	}{{"batched", false}, {"perfile", true}} {
		b.Run(mode.name, func(b *testing.B) {
			dir := benchSaveDir(b, 512, 4, 16)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := Load(dir, LoadOptions{PerFileReads: mode.perFile})
				if err != nil {
					b.Fatal(err)
				}
				if !res.Report.Clean() {
					b.Fatal("findings")
				}
			}
		})
	}
}
