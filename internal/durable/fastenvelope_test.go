package durable

import (
	"reflect"
	"testing"
	"time"

	"censysmap/internal/journal"
)

// decodeBoth runs one record stream through a fast and a legacy decoder and
// asserts identical dumps and identical (including absent) errors at every
// step. It returns the dump when both decoders finish clean.
func decodeBoth(t *testing.T, payloads [][]byte) (journal.PartitionDump, bool) {
	t.Helper()
	fast := &partitionDecoder{fastDecode: true}
	slow := &partitionDecoder{}
	for i, p := range payloads {
		fe, se := fast.next(p), slow.next(p)
		if (fe == nil) != (se == nil) || (fe != nil && fe.Error() != se.Error()) {
			t.Fatalf("record %d: fast err %v, slow err %v", i, fe, se)
		}
		if fe != nil {
			return journal.PartitionDump{}, false
		}
	}
	fd, ferr := fast.finish()
	sd, serr := slow.finish()
	if (ferr == nil) != (serr == nil) || (ferr != nil && ferr.Error() != serr.Error()) {
		t.Fatalf("finish: fast err %v, slow err %v", ferr, serr)
	}
	if ferr != nil {
		return journal.PartitionDump{}, false
	}
	if !reflect.DeepEqual(fd, sd) {
		t.Fatalf("dumps differ:\n fast %+v\n slow %+v", fd, sd)
	}
	return fd, true
}

// TestFastEnvelopeDifferential holds the hand-rolled envelope scanner
// equal to the encoding/json decoder over round-tripped dumps, including
// shapes the fast path must punt on (escapes, unicode, huge numbers).
func TestFastEnvelopeDifferential(t *testing.T) {
	at := func(m int) time.Time {
		return time.Date(2026, 4, 1, 0, m, 0, 0, time.UTC)
	}
	ev := func(ent string, seq uint64, m int, kind string, payload []byte) journal.Event {
		return journal.Event{Entity: ent, Seq: seq, Time: at(m).UTC(), Kind: kind, Payload: payload}
	}
	dumps := map[string]journal.PartitionDump{
		"plain": {
			SSDReads: 12, HDDReads: 3, Appends: 40, Snaps: 2,
			Rows: []journal.RowDump{
				{Entity: "10.0.1.7", LastSnap: 1, NextSeq: 4,
					HDD: []journal.Event{ev("10.0.1.7", 1, 0, "service_found", []byte(`{"service":{"port":443}}`))},
					SSD: []journal.Event{
						ev("10.0.1.7", 2, 1, journal.SnapshotKind, []byte(`{"state":"up"}`)),
						ev("10.0.1.7", 3, 2, "service_changed", []byte{0x00, 0xff, 0x7f}),
					}},
				{Entity: "10.0.1.9", LastSnap: -1, NextSeq: 2,
					SSD: []journal.Event{ev("10.0.1.9", 1, 3, "custom_kind", nil)}},
			},
		},
		"fallback shapes": {
			Rows: []journal.RowDump{
				// Escaped quote and non-ASCII entity: the fast scanner must
				// hand these to encoding/json untouched.
				{Entity: `web "édition" <prod>`, LastSnap: 0, NextSeq: 3,
					SSD: []journal.Event{
						ev(`web "édition" <prod>`, 1, 0, "kind\twith\ttabs", []byte("x")),
						ev(`web "édition" <prod>`, 2, 90, "service_removed", []byte(`{}`)),
					}},
				{Entity: "big", LastSnap: 2, NextSeq: 1<<64 - 1,
					SSD: []journal.Event{ev("big", 1<<63, 5, "service_pending", nil)}},
			},
		},
		"empty": {},
	}
	for name, d := range dumps {
		got, ok := decodeBoth(t, encodePartition(d))
		if !ok {
			t.Fatalf("%s: decoders rejected a round-tripped dump", name)
		}
		if !reflect.DeepEqual(got, d) {
			t.Fatalf("%s: round trip drifted:\n got  %+v\n want %+v", name, got, d)
		}
	}
}

// TestFastEnvelopeMalformed feeds corrupt records to both decoders and
// requires identical error text — the fast path must never accept (or
// re-word) what encoding/json rejects.
func TestFastEnvelopeMalformed(t *testing.T) {
	meta := marshalEnvelope(envelope{T: "meta", Meta: &metaRec{}})
	row := marshalEnvelope(envelope{T: "row", Row: &rowRec{Entity: "e", Events: 1}})
	cases := map[string][][]byte{
		"truncated json":     {meta, row, []byte(`{"t":"ev","ev":{"seq":1`)},
		"bad base64":         {meta, row, []byte(`{"t":"ev","ev":{"seq":1,"ns":0,"kind":"k","payload":"@@@@"}}`)},
		"unknown type":       {meta, []byte(`{"t":"wat"}`)},
		"row before meta":    {row},
		"double meta":        {meta, meta},
		"event outside row":  {meta, marshalEnvelope(envelope{T: "ev", Ev: &evRec{Seq: 1}})},
		"overdeclared row":   {meta, row, marshalEnvelope(envelope{T: "ev", Ev: &evRec{Seq: 1}}), marshalEnvelope(envelope{T: "ev", Ev: &evRec{Seq: 2}})},
		"seq overflow":       {meta, row, []byte(`{"t":"ev","ev":{"seq":99999999999999999999,"ns":0,"kind":"k"}}`)},
		"leading zero":       {meta, row, []byte(`{"t":"ev","ev":{"seq":01,"ns":0,"kind":"k"}}`)},
		"raw control in kind": {meta, row, []byte("{\"t\":\"ev\",\"ev\":{\"seq\":1,\"ns\":0,\"kind\":\"a\x01b\"}}")},
	}
	for name, payloads := range cases {
		if _, ok := decodeBoth(t, payloads); ok {
			t.Fatalf("%s: expected a decode error, both decoders accepted", name)
		}
	}
}
