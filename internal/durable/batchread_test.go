package durable

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// copyTree duplicates a fixture store into a temp dir so loads that queue
// repairs never touch the committed testdata.
func copyTree(t *testing.T, src, dst string) {
	t.Helper()
	if err := filepath.Walk(src, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, _ := filepath.Rel(src, path)
		target := filepath.Join(dst, rel)
		if info.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(target, data, 0o644)
	}); err != nil {
		t.Fatal(err)
	}
}

// TestBatchedReadDifferential holds the batched shared-buffer reader
// byte-equivalent to the legacy per-file reader: identical stores, findings,
// quarantine sets, and checkpoints over a clean store, a freshly corrupted
// store, and both committed corrupted fixtures.
func TestBatchedReadDifferential(t *testing.T) {
	dirs := make(map[string]string)

	clean := t.TempDir()
	saveFixture(t, clean, fixtureStore(t))
	dirs["clean"] = clean

	corrupted := t.TempDir()
	saveFixture(t, corrupted, fixtureStore(t))
	corruptMatching(t, corrupted, `"kind":"snapshot"`)
	dirs["corrupted"] = corrupted

	for _, fixture := range []string{"store_repairable", "store_quarantine"} {
		dst := t.TempDir()
		copyTree(t, filepath.Join("testdata", fixture), dst)
		dirs[fixture] = dst
	}

	for name, dir := range dirs {
		// Load is read-only (repairs are only queued, applied by fsck
		// -repair), so both strategies can read the same directory — and
		// must, since Finding.Detail strings embed absolute paths.
		rebuild := map[string]SnapshotRebuilder{"journal": fixtureRebuilder}
		per, perErr := Load(dir, LoadOptions{Rebuild: rebuild, PerFileReads: true})
		bat, batErr := Load(dir, LoadOptions{Rebuild: rebuild})
		if (perErr == nil) != (batErr == nil) {
			t.Fatalf("%s: per-file err %v, batched err %v", name, perErr, batErr)
		}
		if perErr != nil {
			continue
		}
		if !bytes.Equal(per.Checkpoint, bat.Checkpoint) {
			t.Fatalf("%s: checkpoints differ", name)
		}
		if !reflect.DeepEqual(per.Report, bat.Report) {
			t.Fatalf("%s: reports differ:\n per-file %+v\n batched  %+v", name, per.Report, bat.Report)
		}
		if len(per.Stores) != len(bat.Stores) {
			t.Fatalf("%s: store sets differ", name)
		}
		for sn, ps := range per.Stores {
			bs, ok := bat.Stores[sn]
			if !ok {
				t.Fatalf("%s: store %s missing from batched result", name, sn)
			}
			if !reflect.DeepEqual(dumpAll(ps), dumpAll(bs)) {
				t.Fatalf("%s: store %s dumps differ between readers", name, sn)
			}
		}
	}
}
