// Golden-fixture tests for the storage engine: corrupted segment stores are
// committed under testdata/ together with the exact fsck report and
// post-recovery state digest each must produce. A diff here means the on-disk
// format or a recovery rule changed — which alters how existing stores read
// back and must be deliberate. Regenerate with:
//
//	go test ./internal/durable/ -run TestGolden -update
package durable

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"censysmap/internal/journal"
)

var update = flag.Bool("update", false, "rewrite golden fixtures")

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if string(got) != string(want) {
		t.Errorf("%s changed\n got: %s\nwant: %s", name, got, want)
	}
}

// digestStore hashes each partition's canonical re-encoding — the
// post-recovery state digest the fixtures pin.
func digestStore(s *journal.Store) []byte {
	var sb strings.Builder
	for pi := 0; pi < s.Partitions(); pi++ {
		h := sha256.New()
		for _, rec := range encodePartition(s.DumpPartition(pi)) {
			h.Write(rec)
			h.Write([]byte{0})
		}
		fmt.Fprintf(&sb, "p%d %s\n", pi, hex.EncodeToString(h.Sum(nil)))
	}
	return []byte(sb.String())
}

// corruptGolden flips one payload byte of the first record containing needle.
func corruptGolden(t *testing.T, dir, needle string) {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join(dir, "stores", "journal", "p*", "seg-*.seg"))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		scan, err := InspectSegment(data)
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range scan.Frames {
			if !strings.Contains(string(f.Payload), needle) {
				continue
			}
			data[f.PayloadOff+1] ^= 0x20
			if err := os.WriteFile(p, data, 0o644); err != nil {
				t.Fatal(err)
			}
			return
		}
	}
	t.Fatalf("no record containing %q", needle)
}

// rebuildFixtures regenerates the committed corrupted stores. The base store
// is fixtureStore (fixed clock), so the bytes are reproducible.
func rebuildFixtures(t *testing.T) {
	t.Helper()
	build := func(name string, corrupt func(dir string)) {
		dir := filepath.Join("testdata", name)
		if err := os.RemoveAll(dir); err != nil {
			t.Fatal(err)
		}
		saveFixture(t, dir, fixtureStore(t))
		corrupt(dir)
	}
	// Every fault here is repairable: recovery must restore the exact saved
	// state and fsck -repair must leave the store clean.
	build("store_repairable", func(dir string) {
		corruptGolden(t, dir, `"kind":"snapshot"`)
		// Tear the active tail of partition 0.
		paths, _ := filepath.Glob(filepath.Join(dir, "stores", "journal", "p0000", "seg-*.seg"))
		for _, p := range paths {
			data, _ := os.ReadFile(p)
			if scan, err := InspectSegment(data); err == nil && !scan.Sealed {
				if err := os.WriteFile(p, data[:len(data)-5], 0o644); err != nil {
					t.Fatal(err)
				}
			}
		}
		// Stale hint + corrupt primary checkpoint: mirror must serve.
		if err := os.WriteFile(filepath.Join(dir, "checkpoint", "CURRENT"), []byte("0\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		cp := filepath.Join(dir, "checkpoint", "cp-000001.a")
		data, err := os.ReadFile(cp)
		if err != nil {
			t.Fatal(err)
		}
		data[headerSize+frameHeader+3] ^= 0x08
		if err := os.WriteFile(cp, data, 0o644); err != nil {
			t.Fatal(err)
		}
	})
	// An unrepairable store: partition 1's first sealed segment is gone, so
	// that partition is quarantined; partition 0 must survive untouched.
	build("store_quarantine", func(dir string) {
		if err := os.Remove(filepath.Join(dir, "stores", "journal", "p0001", "seg-000000.seg")); err != nil {
			t.Fatal(err)
		}
	})
}

func TestGoldenCorruptedStores(t *testing.T) {
	if *update {
		rebuildFixtures(t)
	}
	for _, name := range []string{"store_repairable", "store_quarantine"} {
		t.Run(name, func(t *testing.T) {
			dir := filepath.Join("testdata", name)
			rep, err := Fsck(dir, FsckOptions{
				Rebuild: map[string]SnapshotRebuilder{"journal": fixtureRebuilder},
			})
			if err != nil {
				t.Fatal(err)
			}
			repJSON, err := json.MarshalIndent(rep, "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			checkGolden(t, name+".fsck.json", append(repJSON, '\n'))

			res, err := Load(dir, LoadOptions{
				Rebuild: map[string]SnapshotRebuilder{"journal": fixtureRebuilder},
			})
			if err != nil {
				t.Fatal(err)
			}
			checkGolden(t, name+".digest", digestStore(res.Stores["journal"]))
		})
	}

	// The repairable fixture's recovered state must equal the uncorrupted
	// fixture bit-for-bit — not merely match its own golden.
	res, err := Load(filepath.Join("testdata", "store_repairable"), LoadOptions{
		Rebuild: map[string]SnapshotRebuilder{"journal": fixtureRebuilder},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := digestStore(res.Stores["journal"]), digestStore(fixtureStore(t)); string(got) != string(want) {
		t.Errorf("repairable fixture recovery diverged from the pristine store\n got: %s\nwant: %s", got, want)
	}
}
