package durable

// Segment shipping: the cluster replication layer moves journal records
// between nodes inside the same CRC32C-framed segment format the storage
// engine writes to disk. A leader packages a partition's replication-log
// records as sealed segments (immutable, footer-checksummed — the catch-up
// chain) plus one unsealed tail (the current round's delta); a follower
// verifies every frame and the footer before applying a single record, so a
// corrupted ship is detected exactly like a corrupted disk.

import (
	"encoding/json"
	"fmt"
)

// BuildSegment frames records as one segment file of the given kind for a
// partition. Sealed segments carry the footer and are immutable; unsealed
// segments are tail deltas a later ship supersedes.
func BuildSegment(kind SegmentKind, partition uint32, records [][]byte, sealed bool) []byte {
	b := newSegment(kind, partition)
	for _, rec := range records {
		b.append(rec)
	}
	return b.bytes(sealed)
}

// DecodeShippedSegment strictly decodes a shipped segment, additionally
// checking that it is of the expected kind and partition — a replication
// stream must not silently apply records that were built for a different
// partition's row space.
func DecodeShippedSegment(data []byte, kind SegmentKind, partition uint32) ([][]byte, error) {
	scan, err := scanSegment(data)
	if err != nil {
		return nil, err
	}
	if scan.Kind != kind {
		return nil, fmt.Errorf("%w: shipped kind %d, want %d", ErrBadHeader, scan.Kind, kind)
	}
	if scan.Partition != partition {
		return nil, fmt.Errorf("%w: shipped partition %d, want %d", ErrBadHeader, scan.Partition, partition)
	}
	return DecodeSegment(data)
}

// ShipState is the per-partition replication bookkeeping nodes exchange
// during catch-up negotiation: which placement generation the records belong
// to, the leader lease epoch that produced them, and how many log records the
// holder has applied. It rides the wire as a single-record sealed KindReplica
// segment so its integrity is checked like everything else shipped.
type ShipState struct {
	Partition  uint32 `json:"partition"`
	Generation uint64 `json:"generation"`
	Epoch      uint64 `json:"epoch"`
	Applied    uint64 `json:"applied"`
}

// Encode frames s as a single-record sealed KindReplica segment.
func (s ShipState) Encode() []byte {
	payload, err := json.Marshal(s)
	if err != nil {
		// ShipState is plain integers; Marshal cannot fail.
		panic(err)
	}
	return buildSingleRecord(KindReplica, s.Partition, payload)
}

// DecodeShipState reads a ShipState segment produced by Encode.
func DecodeShipState(data []byte) (ShipState, error) {
	payload, err := decodeSingleRecord(data, KindReplica)
	if err != nil {
		return ShipState{}, err
	}
	var s ShipState
	if err := json.Unmarshal(payload, &s); err != nil {
		return ShipState{}, fmt.Errorf("durable: ship state payload: %w", err)
	}
	return s, nil
}
