// Package durable is the on-disk storage engine behind crash recovery: it
// persists the event journals and the pipeline checkpoint as binary segment
// files with CRC32C-framed records, and recovers them with fault detection,
// torn-tail repair, CRC-proven snapshot reconstruction, and per-partition
// quarantine when a partition is beyond repair.
//
// The format is deliberately simple — the robustness lives in the recovery
// rules, not in format cleverness:
//
//	segment  := header record* footer?
//	header   := magic "CSEG1\x00" | version u8 | kind u8 | partition u32be | reserved u32be
//	record   := length u32be | crc32c(payload) u32be | payload
//	footer   := magic "CFTR1\x00" | version u8 | pad u8 | count u64be
//	          | crc32c(record crcs) u32be | crc32c(footer[0:20]) u32be
//
// A sealed segment carries the footer and is immutable; the active (last)
// segment of a partition has no footer and is the only file a torn write can
// hit. Every decoder in this package is bounds-checked and returns typed
// errors — it never panics or over-reads on corrupt input (see
// FuzzSegmentDecode).
package durable

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Typed decode errors. Recovery and fsck classify faults by these.
var (
	// ErrBadHeader marks a segment whose 16-byte header is missing or
	// malformed — the file is unusable.
	ErrBadHeader = errors.New("durable: bad segment header")
	// ErrChecksum marks a record whose payload does not hash to its stored
	// CRC32C — a bit flip or overwrite inside the file body.
	ErrChecksum = errors.New("durable: record checksum mismatch")
	// ErrTornTail marks an unsealed segment whose final record is
	// incomplete or corrupt — the signature of a torn append. The valid
	// prefix is still readable.
	ErrTornTail = errors.New("durable: torn tail")
	// ErrBadFooter marks a sealed segment whose footer is missing, fails
	// its own CRC, or disagrees with the records it summarizes.
	ErrBadFooter = errors.New("durable: bad segment footer")
)

// SegmentKind tags what a segment file stores.
type SegmentKind uint8

const (
	// KindJournal segments hold one journal partition's record stream.
	KindJournal SegmentKind = 1
	// KindCheckpoint segments hold one checkpoint blob as a single record.
	KindCheckpoint SegmentKind = 2
	// KindManifest segments hold the store manifest as a single record.
	KindManifest SegmentKind = 3
	// KindDWB segments are the doublewrite tail sidecar: a copy of the
	// active segment's final record, used to repair torn appends.
	KindDWB SegmentKind = 4
	// KindReplica segments carry one partition's replication-log records
	// between cluster nodes: sealed chains for catch-up, unsealed tails for
	// per-round deltas (see internal/cluster and BuildSegment in ship.go).
	KindReplica SegmentKind = 5
)

const (
	segMagic    = "CSEG1\x00"
	footMagic   = "CFTR1\x00"
	segVersion  = 1
	headerSize  = 16
	footerSize  = 24
	frameHeader = 8
	// maxRecordLen bounds a single record so a corrupt length field cannot
	// drive a multi-gigabyte allocation before the CRC check catches it.
	maxRecordLen = 1 << 28
)

// castagnoli is the CRC32C polynomial table shared by every frame.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Checksum is the record checksum function (CRC32C), exported so tests and
// the fault injector can compute frame CRCs without reimplementing it.
func Checksum(payload []byte) uint32 { return crc32.Checksum(payload, castagnoli) }

// segmentBuilder accumulates framed records for one segment file.
type segmentBuilder struct {
	buf  []byte
	crcs []uint32
}

// newSegment starts a segment of the given kind for a partition.
func newSegment(kind SegmentKind, partition uint32) *segmentBuilder {
	b := &segmentBuilder{buf: make([]byte, 0, 4096)}
	b.buf = append(b.buf, segMagic...)
	b.buf = append(b.buf, segVersion, byte(kind))
	b.buf = binary.BigEndian.AppendUint32(b.buf, partition)
	b.buf = binary.BigEndian.AppendUint32(b.buf, 0)
	return b
}

// append frames one record.
func (b *segmentBuilder) append(payload []byte) {
	crc := Checksum(payload)
	b.buf = binary.BigEndian.AppendUint32(b.buf, uint32(len(payload)))
	b.buf = binary.BigEndian.AppendUint32(b.buf, crc)
	b.buf = append(b.buf, payload...)
	b.crcs = append(b.crcs, crc)
}

// records reports how many records have been appended.
func (b *segmentBuilder) records() int { return len(b.crcs) }

// segCRC folds the per-record CRCs into the footer's segment checksum.
func segCRC(crcs []uint32) uint32 {
	var raw []byte
	for _, c := range crcs {
		raw = binary.BigEndian.AppendUint32(raw, c)
	}
	return crc32.Checksum(raw, castagnoli)
}

// bytes finalizes the segment, appending the sealed footer when asked.
func (b *segmentBuilder) bytes(sealed bool) []byte {
	if !sealed {
		return b.buf
	}
	out := b.buf
	out = append(out, footMagic...)
	out = append(out, segVersion, 0)
	out = binary.BigEndian.AppendUint64(out, uint64(len(b.crcs)))
	out = binary.BigEndian.AppendUint32(out, segCRC(b.crcs))
	foot := out[len(out)-20:]
	out = binary.BigEndian.AppendUint32(out, crc32.Checksum(foot, castagnoli))
	return out
}

// Frame is one scanned record slot, valid or not.
type Frame struct {
	// Offset is the frame's start (the length field) within the file.
	Offset int64
	// PayloadOff is where the payload bytes begin.
	PayloadOff int64
	// Payload is the framed bytes (present even when the CRC fails, so
	// recovery can attempt reconstruction against StoredCRC).
	Payload []byte
	// StoredCRC is the CRC32C the frame claims.
	StoredCRC uint32
	// CRCOK reports whether the payload hashes to StoredCRC.
	CRCOK bool
}

// SegmentScan is the tolerant structural read of one segment file: header
// fields, every scannable frame with its checksum verdict, and the torn/seal
// state. Recovery and fsck share it; strict decoding layers on top.
type SegmentScan struct {
	Kind      SegmentKind
	Partition uint32
	// Sealed reports whether a structurally valid footer is present.
	Sealed bool
	// FooterCount / FooterSegCRC are the sealed footer's claims.
	FooterCount  uint64
	FooterSegCRC uint32
	// FooterErr is non-nil when footer bytes exist but fail validation.
	FooterErr error
	// Frames are the scanned records in file order.
	Frames []Frame
	// Torn is set when the byte stream ends inside a frame; TornOffset is
	// where the partial frame starts.
	Torn       bool
	TornOffset int64
}

// scanSegment structurally parses data. It fails only on a bad header;
// everything after that is reported through the scan so callers can classify
// and repair. It never reads out of bounds.
func scanSegment(data []byte) (*SegmentScan, error) {
	if len(data) < headerSize || string(data[:len(segMagic)]) != segMagic {
		return nil, ErrBadHeader
	}
	if data[6] != segVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadHeader, data[6])
	}
	s := &SegmentScan{
		Kind:      SegmentKind(data[7]),
		Partition: binary.BigEndian.Uint32(data[8:12]),
	}
	switch s.Kind {
	case KindJournal, KindCheckpoint, KindManifest, KindDWB, KindReplica:
	default:
		return nil, fmt.Errorf("%w: unknown kind %d", ErrBadHeader, data[7])
	}

	body := data[headerSize:]
	// Detect a trailing footer first: it delimits the record region.
	if n := len(body); n >= footerSize {
		foot := body[n-footerSize:]
		if string(foot[:len(footMagic)]) == footMagic {
			stored := binary.BigEndian.Uint32(foot[20:24])
			if crc32.Checksum(foot[:20], castagnoli) == stored && foot[6] == segVersion {
				s.Sealed = true
				s.FooterCount = binary.BigEndian.Uint64(foot[8:16])
				s.FooterSegCRC = binary.BigEndian.Uint32(foot[16:20])
				body = body[:n-footerSize]
			} else {
				s.FooterErr = fmt.Errorf("%w: footer self-checksum mismatch", ErrBadFooter)
				body = body[:n-footerSize]
			}
		}
	}

	off := int64(headerSize)
	for len(body) > 0 {
		if len(body) < frameHeader {
			s.Torn, s.TornOffset = true, off
			break
		}
		length := binary.BigEndian.Uint32(body[:4])
		crc := binary.BigEndian.Uint32(body[4:8])
		if length > maxRecordLen || int(length) > len(body)-frameHeader {
			s.Torn, s.TornOffset = true, off
			break
		}
		payload := body[frameHeader : frameHeader+int(length)]
		s.Frames = append(s.Frames, Frame{
			Offset:     off,
			PayloadOff: off + frameHeader,
			Payload:    payload,
			StoredCRC:  crc,
			CRCOK:      Checksum(payload) == crc,
		})
		off += frameHeader + int64(length)
		body = body[frameHeader+int(length):]
	}
	return s, nil
}

// DecodeSegment strictly decodes a segment file into its record payloads.
// Any fault yields a typed error (ErrBadHeader, ErrChecksum, ErrTornTail,
// ErrBadFooter) wrapped with the failing record index and byte offset; the
// successfully decoded prefix is returned alongside the error so callers can
// still see how far the file was good.
func DecodeSegment(data []byte) ([][]byte, error) {
	s, err := scanSegment(data)
	if err != nil {
		return nil, err
	}
	var out [][]byte
	for i, f := range s.Frames {
		if !f.CRCOK {
			// An invalid final record of an unsealed segment is a torn
			// append (the write stopped mid-record); anywhere else it is
			// body corruption.
			if !s.Sealed && !s.Torn && i == len(s.Frames)-1 {
				return out, fmt.Errorf("record %d at offset %d: %w", i, f.Offset, ErrTornTail)
			}
			return out, fmt.Errorf("record %d at offset %d: %w", i, f.Offset, ErrChecksum)
		}
		out = append(out, f.Payload)
	}
	if s.Torn {
		return out, fmt.Errorf("record %d at offset %d: %w", len(s.Frames), s.TornOffset, ErrTornTail)
	}
	if s.FooterErr != nil {
		return out, s.FooterErr
	}
	if s.Sealed {
		if s.FooterCount != uint64(len(s.Frames)) {
			return out, fmt.Errorf("%w: footer count %d != %d records",
				ErrBadFooter, s.FooterCount, len(s.Frames))
		}
		crcs := make([]uint32, len(s.Frames))
		for i, f := range s.Frames {
			crcs[i] = f.StoredCRC
		}
		if segCRC(crcs) != s.FooterSegCRC {
			return out, fmt.Errorf("%w: footer segment checksum mismatch", ErrBadFooter)
		}
	}
	return out, nil
}

// InspectSegment exposes the tolerant structural scan for the fault injector
// and fsck: frame offsets, checksum verdicts, and seal state, without
// decoding payloads.
func InspectSegment(data []byte) (*SegmentScan, error) { return scanSegment(data) }

// buildSingleRecord is the common shape for manifest / checkpoint / dwb
// files: one framed record in one segment.
func buildSingleRecord(kind SegmentKind, partition uint32, payload []byte) []byte {
	b := newSegment(kind, partition)
	b.append(payload)
	return b.bytes(true)
}

// decodeSingleRecord reads a single-record sealed segment of the expected
// kind.
func decodeSingleRecord(data []byte, want SegmentKind) ([]byte, error) {
	s, err := scanSegment(data)
	if err != nil {
		return nil, err
	}
	if s.Kind != want {
		return nil, fmt.Errorf("%w: kind %d, want %d", ErrBadHeader, s.Kind, want)
	}
	recs, err := DecodeSegment(data)
	if err != nil {
		return nil, err
	}
	if len(recs) != 1 {
		return nil, fmt.Errorf("%w: %d records, want 1", ErrBadFooter, len(recs))
	}
	return recs[0], nil
}
