package durable

import (
	"encoding/json"
	"fmt"
	"time"

	"censysmap/internal/journal"
)

// A journal partition serializes to a flat record stream:
//
//	record 0:  {"t":"meta", ...}        partition access counters
//	then, per row in sorted entity order:
//	           {"t":"row", ...}         row header (entity, counts, bookkeeping)
//	           {"t":"ev", ...} × N      the row's events, HDD tier then SSD tier
//
// Envelopes marshal with encoding/json over fixed structs, so identical
// partitions always produce identical bytes — the property the CRC-proven
// snapshot repair and the differential suite both rest on. Event timestamps
// travel as UnixNano and are restored as UTC instants, matching the
// simulation clock's representation bit-for-bit.

type envelope struct {
	T    string   `json:"t"`
	Meta *metaRec `json:"meta,omitempty"`
	Row  *rowRec  `json:"row,omitempty"`
	Ev   *evRec   `json:"ev,omitempty"`
}

type metaRec struct {
	SSDReads uint64 `json:"ssd_reads"`
	HDDReads uint64 `json:"hdd_reads"`
	Appends  uint64 `json:"appends"`
	Snaps    uint64 `json:"snaps"`
}

type rowRec struct {
	Entity   string `json:"entity"`
	LastSnap int    `json:"last_snap"`
	NextSeq  uint64 `json:"next_seq"`
	// HDD is how many of the row's events belong to the HDD tier (they come
	// first in the stream); Events is the row's total event count.
	HDD    int `json:"hdd"`
	Events int `json:"events"`
}

type evRec struct {
	Seq     uint64 `json:"seq"`
	NS      int64  `json:"ns"`
	Kind    string `json:"kind"`
	Payload []byte `json:"payload,omitempty"`
}

func marshalEnvelope(e envelope) []byte {
	b, err := json.Marshal(e)
	if err != nil {
		panic("durable: envelope marshal cannot fail: " + err.Error())
	}
	return b
}

func eventEnvelope(ev journal.Event) []byte {
	return marshalEnvelope(envelope{T: "ev", Ev: &evRec{
		Seq: ev.Seq, NS: ev.Time.UnixNano(), Kind: ev.Kind, Payload: ev.Payload,
	}})
}

// encodePartition flattens one partition dump into record payloads.
func encodePartition(d journal.PartitionDump) [][]byte {
	out := make([][]byte, 0, 1+2*len(d.Rows))
	out = append(out, marshalEnvelope(envelope{T: "meta", Meta: &metaRec{
		SSDReads: d.SSDReads, HDDReads: d.HDDReads, Appends: d.Appends, Snaps: d.Snaps,
	}}))
	for _, r := range d.Rows {
		out = append(out, marshalEnvelope(envelope{T: "row", Row: &rowRec{
			Entity: r.Entity, LastSnap: r.LastSnap, NextSeq: r.NextSeq,
			HDD: len(r.HDD), Events: len(r.HDD) + len(r.SSD),
		}}))
		for _, ev := range r.HDD {
			out = append(out, eventEnvelope(ev))
		}
		for _, ev := range r.SSD {
			out = append(out, eventEnvelope(ev))
		}
	}
	return out
}

// SnapshotRebuilder reconstructs a snapshot-event payload for an entity from
// the events preceding it — the write side's snapshot encoder replayed over
// the journaled history. Recovery uses it to repair corrupt snapshot
// records: the candidate is accepted only when its envelope hashes to the
// frame's stored CRC32C, which proves byte-exact reconstruction.
type SnapshotRebuilder func(entity string, prior []journal.Event) ([]byte, error)

// partitionDecoder is the streaming state machine that turns a record
// sequence back into a PartitionDump. It tracks enough row context to
// attempt CRC-proven snapshot repair at any corrupt record position.
type partitionDecoder struct {
	dump    journal.PartitionDump
	sawMeta bool

	// fastDecode enables the hand-rolled envelope scanner (fastenvelope.go);
	// off, every record goes through encoding/json — the legacy decode path
	// LoadOptions.PerFileReads restores for A/B benchmarks.
	fastDecode bool
	// Scratch envelope bodies the fast parser fills in place of per-record
	// heap structs; apply consumes them before the next record arrives.
	scratchMeta metaRec
	scratchRow  rowRec
	scratchEv   evRec

	// Current row being filled, with its declared shape.
	cur     *journal.RowDump
	curHDD  int
	curWant int
	curGot  int
}

// next consumes one decoded record payload.
func (pd *partitionDecoder) next(payload []byte) error {
	if pd.fastDecode {
		if e, ok := pd.parseFast(payload); ok {
			return pd.apply(e)
		}
	}
	var e envelope
	if err := json.Unmarshal(payload, &e); err != nil {
		return fmt.Errorf("envelope: %w", err)
	}
	return pd.apply(e)
}

// apply folds one decoded envelope into the dump state machine.
func (pd *partitionDecoder) apply(e envelope) error {
	switch e.T {
	case "meta":
		if pd.sawMeta || e.Meta == nil {
			return fmt.Errorf("unexpected meta record")
		}
		pd.sawMeta = true
		pd.dump.SSDReads = e.Meta.SSDReads
		pd.dump.HDDReads = e.Meta.HDDReads
		pd.dump.Appends = e.Meta.Appends
		pd.dump.Snaps = e.Meta.Snaps
	case "row":
		if !pd.sawMeta || e.Row == nil {
			return fmt.Errorf("row record out of place")
		}
		if pd.cur != nil && pd.curGot != pd.curWant {
			return fmt.Errorf("row %q: %d events, declared %d", pd.cur.Entity, pd.curGot, pd.curWant)
		}
		pd.flushRow()
		pd.cur = &journal.RowDump{
			Entity: e.Row.Entity, LastSnap: e.Row.LastSnap, NextSeq: e.Row.NextSeq,
		}
		pd.curHDD, pd.curWant, pd.curGot = e.Row.HDD, e.Row.Events, 0
	case "ev":
		if pd.cur == nil || e.Ev == nil {
			return fmt.Errorf("event record outside a row")
		}
		if pd.curGot >= pd.curWant {
			return fmt.Errorf("row %q: more events than declared %d", pd.cur.Entity, pd.curWant)
		}
		ev := journal.Event{
			Entity: pd.cur.Entity, Seq: e.Ev.Seq,
			Time: time.Unix(0, e.Ev.NS).UTC(), Kind: e.Ev.Kind, Payload: e.Ev.Payload,
		}
		if pd.curGot < pd.curHDD {
			pd.cur.HDD = append(pd.cur.HDD, ev)
		} else {
			pd.cur.SSD = append(pd.cur.SSD, ev)
		}
		pd.curGot++
	default:
		return fmt.Errorf("unknown envelope type %q", e.T)
	}
	return nil
}

func (pd *partitionDecoder) flushRow() {
	if pd.cur != nil {
		pd.dump.Rows = append(pd.dump.Rows, *pd.cur)
		pd.cur = nil
	}
}

// finish validates terminal state and returns the dump.
func (pd *partitionDecoder) finish() (journal.PartitionDump, error) {
	if !pd.sawMeta {
		return journal.PartitionDump{}, fmt.Errorf("missing meta record")
	}
	if pd.cur != nil && pd.curGot != pd.curWant {
		return journal.PartitionDump{}, fmt.Errorf("row %q: %d events, declared %d",
			pd.cur.Entity, pd.curGot, pd.curWant)
	}
	pd.flushRow()
	return pd.dump, nil
}

// tryRepair attempts CRC-proven reconstruction of a corrupt record under the
// decoder's current position: only a snapshot event mid-row can be rebuilt
// (from the row's prior events; its timestamp equals the triggering delta's,
// because the write side journals both at the same instant). The candidate
// envelope is returned only if it hashes to storedCRC — byte-exact proof.
func (pd *partitionDecoder) tryRepair(storedCRC uint32, rebuild SnapshotRebuilder) ([]byte, bool) {
	if rebuild == nil || pd.cur == nil || pd.curGot == 0 || pd.curGot >= pd.curWant {
		return nil, false
	}
	prior := make([]journal.Event, 0, pd.curGot)
	prior = append(prior, pd.cur.HDD...)
	prior = append(prior, pd.cur.SSD...)
	prev := prior[len(prior)-1]
	payload, err := rebuild(pd.cur.Entity, prior)
	if err != nil {
		return nil, false
	}
	candidate := marshalEnvelope(envelope{T: "ev", Ev: &evRec{
		Seq: prev.Seq + 1, NS: prev.Time.UnixNano(), Kind: journal.SnapshotKind, Payload: payload,
	}})
	if Checksum(candidate) != storedCRC {
		return nil, false
	}
	return candidate, true
}
