package durable

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"censysmap/internal/journal"
)

// markSegments rewinds every segment/dwb/manifest file's mtime to a sentinel
// so a later save reveals exactly which files it rewrote.
func markSegments(t *testing.T, dir string) time.Time {
	t.Helper()
	sentinel := time.Date(2000, 1, 1, 0, 0, 0, 0, time.UTC)
	for _, pat := range []string{"stores/*/p*/*", "MANIFEST*", "checkpoint/*"} {
		paths, err := filepath.Glob(filepath.Join(dir, pat))
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range paths {
			if err := os.Chtimes(p, sentinel, sentinel); err != nil {
				t.Fatal(err)
			}
		}
	}
	return sentinel
}

// rewrittenPartitions reports which partitions of a store had any file
// touched since the sentinel.
func rewrittenPartitions(t *testing.T, dir, store string, sentinel time.Time) map[int]bool {
	t.Helper()
	out := map[int]bool{}
	paths, err := filepath.Glob(filepath.Join(dir, "stores", store, "p*", "*"))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range paths {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		if fi.ModTime().After(sentinel) {
			var pi int
			if _, err := fmt.Sscanf(filepath.Base(filepath.Dir(p)), "p%04d", &pi); err != nil {
				t.Fatal(err)
			}
			out[pi] = true
		}
	}
	return out
}

// entityInPartition finds an entity id hashing to the wanted partition.
func entityInPartition(s *journal.Store, want int) string {
	for i := 0; ; i++ {
		id := fmt.Sprintf("inc-host-%d", i)
		probe := journal.NewPartitioned(s.Partitions())
		probe.Append(id, time.Unix(0, 1).UTC(), "k", nil)
		for pi := 0; pi < probe.Partitions(); pi++ {
			if len(probe.DumpPartition(pi).Rows) > 0 {
				if pi == want {
					return id
				}
				break
			}
		}
	}
}

// TestIncrementalSaveSkipsCleanPartitions proves the cost model: an
// incremental save rewrites exactly the partitions whose content generation
// moved, reuses the rest verbatim, and the stitched mixed-generation
// manifest recovers bit-identically to a full save.
func TestIncrementalSaveSkipsCleanPartitions(t *testing.T) {
	dir := t.TempDir()
	s := journal.NewPartitioned(4)
	base := time.Date(2024, 8, 20, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 32; i++ {
		id := fmt.Sprintf("seed-host-%03d", i)
		if _, err := s.Append(id, base, "service_found", []byte(`{"x":1}`)); err != nil {
			t.Fatal(err)
		}
		if _, err := s.AppendSnapshot(id, base, []byte(`{"state":"up"}`)); err != nil {
			t.Fatal(err)
		}
	}
	opts := SaveOptions{RecordsPerSegment: 4, Incremental: true}
	if err := Save(dir, []NamedStore{{Name: "journal", Store: s}}, []byte(`{"t":1}`), opts); err != nil {
		t.Fatal(err)
	}

	// Round 1: nothing dirtied — no partition may be rewritten.
	sentinel := markSegments(t, dir)
	if err := Save(dir, []NamedStore{{Name: "journal", Store: s}}, []byte(`{"t":2}`), opts); err != nil {
		t.Fatal(err)
	}
	if rw := rewrittenPartitions(t, dir, "journal", sentinel); len(rw) != 0 {
		t.Fatalf("clean incremental save rewrote partitions %v", rw)
	}

	// Round 2: dirty exactly partition 2.
	dirty := entityInPartition(s, 2)
	if _, err := s.Append(dirty, base.Add(time.Hour), "service_found", []byte(`{"x":2}`)); err != nil {
		t.Fatal(err)
	}
	sentinel = markSegments(t, dir)
	if err := Save(dir, []NamedStore{{Name: "journal", Store: s}}, []byte(`{"t":3}`), opts); err != nil {
		t.Fatal(err)
	}
	rw := rewrittenPartitions(t, dir, "journal", sentinel)
	if len(rw) != 1 || !rw[2] {
		t.Fatalf("dirtying partition 2 rewrote partitions %v, want exactly {2}", rw)
	}

	// The stitched manifest (three generations of partitions) must load to
	// the live store's exact content, and the full-save behavior must agree.
	res, err := Load(dir, LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Report.Clean() {
		t.Fatalf("findings on stitched store: %+v", res.Report.Findings)
	}
	if string(res.Checkpoint) != `{"t":3}` {
		t.Fatalf("checkpoint = %s", res.Checkpoint)
	}
	if !reflect.DeepEqual(dumpAll(s), dumpAll(res.Stores["journal"])) {
		t.Fatal("stitched incremental load differs from live store")
	}

	fullDir := t.TempDir()
	if err := Save(fullDir, []NamedStore{{Name: "journal", Store: s}}, []byte(`{"t":3}`),
		SaveOptions{RecordsPerSegment: 4}); err != nil {
		t.Fatal(err)
	}
	full, err := Load(fullDir, LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dumpAll(full.Stores["journal"]), dumpAll(res.Stores["journal"])) {
		t.Fatal("incremental and full saves recovered different stores")
	}
}

// TestIncrementalSaveSurvivesMissingReusableSegment: a reusable partition
// whose files vanished must be rewritten, not reused blind.
func TestIncrementalSaveSurvivesMissingReusableSegment(t *testing.T) {
	dir := t.TempDir()
	s := fixtureStore(t)
	opts := SaveOptions{RecordsPerSegment: 4, Incremental: true}
	if err := Save(dir, []NamedStore{{Name: "journal", Store: s}}, []byte(`{}`), opts); err != nil {
		t.Fatal(err)
	}
	segs, err := filepath.Glob(filepath.Join(dir, "stores", "journal", "p0000", "seg-*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments found: %v", err)
	}
	if err := os.Remove(segs[0]); err != nil {
		t.Fatal(err)
	}
	if err := Save(dir, []NamedStore{{Name: "journal", Store: s}}, []byte(`{}`), opts); err != nil {
		t.Fatal(err)
	}
	res, err := Load(dir, LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Report.Clean() {
		t.Fatalf("findings after reuse-miss rewrite: %+v", res.Report.Findings)
	}
	if !reflect.DeepEqual(dumpAll(s), dumpAll(res.Stores["journal"])) {
		t.Fatal("reloaded store differs after rewriting vanished partition")
	}
}
