package durable

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"censysmap/internal/journal"
	"censysmap/internal/telemetry"
)

// On-disk layout of a store directory:
//
//	MANIFEST, MANIFEST.bak          single-record manifest segments
//	stores/<name>/p0000/seg-000000.seg   per-partition segment chain
//	stores/<name>/p0000/tail.dwb         doublewrite copy of the tail record
//	checkpoint/CURRENT                   generation hint (text)
//	checkpoint/cp-000001.a / .b          checkpoint blob, primary + mirror
//
// Every file is written to a temp name and renamed into place; the manifest
// is written last, so a save is atomic at the manifest boundary. The
// manifest's generation — not CURRENT — is authoritative; CURRENT is a
// recoverable hint (the stale-generation fault class).

// Fault kinds recovery and fsck report.
const (
	FaultChecksum     = "checksum"
	FaultTornTail     = "torn_tail"
	FaultTruncated    = "truncated"
	FaultMissing      = "missing"
	FaultBadHeader    = "bad_header"
	FaultBadFooter    = "bad_footer"
	FaultStaleCurrent = "stale_current"
	FaultCheckpoint   = "checkpoint"
	FaultDecode       = "decode"
)

// Recovery actions taken for a finding.
const (
	ActionRebuiltSnapshot = "rebuilt_snapshot"
	ActionRestoredTail    = "truncated_restored"
	ActionQuarantined     = "quarantined"
	ActionFellBack        = "fallback_mirror"
	ActionRescannedGen    = "rescanned_generation"
)

// Finding is one detected fault with the exact location and the recovery
// action taken (or, for fsck, the action recovery would take).
type Finding struct {
	Store     string `json:"store,omitempty"`
	Partition int    `json:"partition"`
	File      string `json:"file,omitempty"`
	Record    int    `json:"record"`
	Offset    int64  `json:"offset"`
	Fault     string `json:"fault"`
	Action    string `json:"action"`
	Detail    string `json:"detail,omitempty"`
}

// Metrics are the storage engine's censys_storage_* counters. They are live
// telemetry counters (like the chaos injector's), so recovery increments and
// /v2/metrics read the same memory.
type Metrics struct {
	RecordsVerified       *telemetry.Counter
	ChecksumFailures      *telemetry.Counter
	TailsTruncated        *telemetry.Counter
	SnapshotsRebuilt      *telemetry.Counter
	PartitionsQuarantined *telemetry.Counter
	CheckpointFallbacks   *telemetry.Counter
}

// NewMetrics returns zeroed storage counters.
func NewMetrics() *Metrics {
	return &Metrics{
		RecordsVerified:       telemetry.NewCounter(),
		ChecksumFailures:      telemetry.NewCounter(),
		TailsTruncated:        telemetry.NewCounter(),
		SnapshotsRebuilt:      telemetry.NewCounter(),
		PartitionsQuarantined: telemetry.NewCounter(),
		CheckpointFallbacks:   telemetry.NewCounter(),
	}
}

// Register exposes the counters on reg as the censys_storage_* family.
func (m *Metrics) Register(reg *telemetry.Registry) {
	if m == nil || reg == nil {
		return
	}
	reg.RegisterCounter("censys_storage_records_verified_total",
		"segment records whose CRC32C verified during recovery", nil, m.RecordsVerified)
	reg.RegisterCounter("censys_storage_checksum_failures_total",
		"segment records that failed their CRC32C during recovery", nil, m.ChecksumFailures)
	reg.RegisterCounter("censys_storage_tails_truncated_total",
		"torn segment tails truncated to the last valid record and restored", nil, m.TailsTruncated)
	reg.RegisterCounter("censys_storage_snapshots_rebuilt_total",
		"corrupt snapshot records reconstructed by CRC-proven replay", nil, m.SnapshotsRebuilt)
	reg.RegisterCounter("censys_storage_partitions_quarantined_total",
		"journal partitions quarantined as unrecoverable", nil, m.PartitionsQuarantined)
	reg.RegisterCounter("censys_storage_checkpoint_fallbacks_total",
		"checkpoint reads that fell back to the mirror copy", nil, m.CheckpointFallbacks)
}

// StorageStats is a plain snapshot of the counters, for assertions.
type StorageStats struct {
	RecordsVerified       uint64
	ChecksumFailures      uint64
	TailsTruncated        uint64
	SnapshotsRebuilt      uint64
	PartitionsQuarantined uint64
	CheckpointFallbacks   uint64
}

// Stats reads the current counter values.
func (m *Metrics) Stats() StorageStats {
	if m == nil {
		return StorageStats{}
	}
	return StorageStats{
		RecordsVerified:       m.RecordsVerified.Value(),
		ChecksumFailures:      m.ChecksumFailures.Value(),
		TailsTruncated:        m.TailsTruncated.Value(),
		SnapshotsRebuilt:      m.SnapshotsRebuilt.Value(),
		PartitionsQuarantined: m.PartitionsQuarantined.Value(),
		CheckpointFallbacks:   m.CheckpointFallbacks.Value(),
	}
}

// manifest is the authoritative description of a saved store directory.
type manifest struct {
	Version int             `json:"version"`
	Gen     uint64          `json:"gen"`
	Stores  []storeManifest `json:"stores"`
}

type storeManifest struct {
	Name       string         `json:"name"`
	Partitions []partManifest `json:"partitions"`
}

type partManifest struct {
	Segments []segManifest `json:"segments"`
	DWB      string        `json:"dwb"`
	// SrcGen is the journal partition's content generation
	// (journal.Store.PartitionGen) captured when these segments were
	// written. An incremental save reuses the segment files verbatim while
	// the live partition still reports the same generation; 0 (absent in
	// manifests from before this field) always forces a rewrite.
	SrcGen uint64 `json:"src_gen,omitempty"`
}

type segManifest struct {
	File    string `json:"file"`
	Records int    `json:"records"`
	Sealed  bool   `json:"sealed"`
	SegCRC  uint32 `json:"seg_crc"`
}

// NamedStore pairs a journal store with its directory name.
type NamedStore struct {
	Name  string
	Store *journal.Store
}

// SaveOptions tune persistence.
type SaveOptions struct {
	// RecordsPerSegment is the seal threshold (default 64). The final chunk
	// of each partition stays unsealed — it is the active segment.
	RecordsPerSegment int
	// Incremental reuses the previous generation's segment files for every
	// partition whose content generation has not moved since they were
	// written, rewriting only dirtied partitions. The new manifest stitches
	// reused and rewritten partitions together; recovery needs no special
	// handling because it always follows manifest paths. False (the zero
	// value) preserves the original rewrite-everything behavior.
	Incremental bool
}

// segmentsIntact reports whether every file a reusable partition manifest
// references still exists on disk.
func segmentsIntact(dir string, pm partManifest) bool {
	for _, sm := range pm.Segments {
		if _, err := os.Stat(filepath.Join(dir, sm.File)); err != nil {
			return false
		}
	}
	if pm.DWB != "" {
		if _, err := os.Stat(filepath.Join(dir, pm.DWB)); err != nil {
			return false
		}
	}
	return true
}

// Save persists the stores and checkpoint blob under dir as a new
// generation. Everything is written via temp-file + rename, manifest last.
func Save(dir string, stores []NamedStore, checkpoint []byte, opts SaveOptions) error {
	per := opts.RecordsPerSegment
	if per <= 0 {
		per = 64
	}
	var old *manifest
	if m, err := readManifest(dir); err == nil {
		old = m
	}
	gen := uint64(1)
	if old != nil {
		gen = old.Gen + 1
	}
	man := manifest{Version: 1, Gen: gen}

	for _, ns := range stores {
		// An incremental save may reuse the previous generation's partition
		// manifests, but only when the directory layout still lines up.
		var oldParts []partManifest
		if opts.Incremental && old != nil {
			for _, osm := range old.Stores {
				if osm.Name == ns.Name && len(osm.Partitions) == ns.Store.Partitions() {
					oldParts = osm.Partitions
				}
			}
		}
		sm := storeManifest{Name: ns.Name}
		storeDir := filepath.Join(dir, "stores", ns.Name)
		if oldParts == nil {
			if err := os.RemoveAll(storeDir); err != nil {
				return fmt.Errorf("durable: save %s: %w", ns.Name, err)
			}
		}
		for pi := 0; pi < ns.Store.Partitions(); pi++ {
			// Capture the generation before dumping: an append landing in
			// between makes the dump newer than the recorded generation, so
			// the next incremental save conservatively rewrites.
			srcGen := ns.Store.PartitionGen(pi)
			if oldParts != nil {
				if opm := oldParts[pi]; opm.SrcGen != 0 && opm.SrcGen == srcGen &&
					segmentsIntact(dir, opm) {
					sm.Partitions = append(sm.Partitions, opm)
					continue
				}
			}
			recs := encodePartition(ns.Store.DumpPartition(pi))
			partDir := filepath.Join(storeDir, fmt.Sprintf("p%04d", pi))
			if oldParts != nil {
				if err := os.RemoveAll(partDir); err != nil {
					return fmt.Errorf("durable: save %s/p%04d: %w", ns.Name, pi, err)
				}
			}
			if err := os.MkdirAll(partDir, 0o755); err != nil {
				return fmt.Errorf("durable: save %s/p%04d: %w", ns.Name, pi, err)
			}
			pm := partManifest{SrcGen: srcGen}
			for si := 0; len(recs) > 0 || si == 0; si++ {
				n := per
				if n > len(recs) {
					n = len(recs)
				}
				chunk := recs[:n]
				recs = recs[n:]
				sealed := len(recs) > 0
				b := newSegment(KindJournal, uint32(pi))
				for _, r := range chunk {
					b.append(r)
				}
				rel := filepath.Join("stores", ns.Name, fmt.Sprintf("p%04d", pi),
					fmt.Sprintf("seg-%06d.seg", si))
				if err := writeFileAtomic(filepath.Join(dir, rel), b.bytes(sealed)); err != nil {
					return fmt.Errorf("durable: save %s: %w", rel, err)
				}
				pm.Segments = append(pm.Segments, segManifest{
					File: rel, Records: len(chunk), Sealed: sealed, SegCRC: segCRC(b.crcs),
				})
				if !sealed {
					// Doublewrite the tail record so a torn final append is
					// repairable without byte drift.
					dwbRel := filepath.Join("stores", ns.Name, fmt.Sprintf("p%04d", pi), "tail.dwb")
					tail := buildSingleRecord(KindDWB, uint32(pi), chunk[len(chunk)-1])
					if err := writeFileAtomic(filepath.Join(dir, dwbRel), tail); err != nil {
						return fmt.Errorf("durable: save %s: %w", dwbRel, err)
					}
					pm.DWB = dwbRel
				}
			}
			sm.Partitions = append(sm.Partitions, pm)
		}
		man.Stores = append(man.Stores, sm)
	}

	cpDir := filepath.Join(dir, "checkpoint")
	if err := os.MkdirAll(cpDir, 0o755); err != nil {
		return fmt.Errorf("durable: save checkpoint dir: %w", err)
	}
	cpSeg := buildSingleRecord(KindCheckpoint, 0, checkpoint)
	for _, suffix := range []string{"a", "b"} {
		p := filepath.Join(cpDir, fmt.Sprintf("cp-%06d.%s", gen, suffix))
		if err := writeFileAtomic(p, cpSeg); err != nil {
			return fmt.Errorf("durable: save checkpoint %s: %w", p, err)
		}
	}
	if err := writeFileAtomic(filepath.Join(cpDir, "CURRENT"),
		[]byte(strconv.FormatUint(gen, 10)+"\n")); err != nil {
		return fmt.Errorf("durable: save CURRENT: %w", err)
	}

	mb, err := json.Marshal(man)
	if err != nil {
		return fmt.Errorf("durable: manifest marshal: %w", err)
	}
	mseg := buildSingleRecord(KindManifest, 0, mb)
	if err := writeFileAtomic(filepath.Join(dir, "MANIFEST.bak"), mseg); err != nil {
		return fmt.Errorf("durable: save MANIFEST.bak: %w", err)
	}
	if err := writeFileAtomic(filepath.Join(dir, "MANIFEST"), mseg); err != nil {
		return fmt.Errorf("durable: save MANIFEST: %w", err)
	}
	return nil
}

func writeFileAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

func readManifest(dir string) (*manifest, error) {
	var lastErr error
	for _, name := range []string{"MANIFEST", "MANIFEST.bak"} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			lastErr = err
			continue
		}
		payload, err := decodeSingleRecord(data, KindManifest)
		if err != nil {
			lastErr = fmt.Errorf("%s: %w", name, err)
			continue
		}
		var m manifest
		if err := json.Unmarshal(payload, &m); err != nil {
			lastErr = fmt.Errorf("%s: %w", name, err)
			continue
		}
		return &m, nil
	}
	return nil, fmt.Errorf("durable: no readable manifest in %s: %w", dir, lastErr)
}

// RecoveryReport describes everything recovery detected and did.
type RecoveryReport struct {
	// Gen is the generation that was loaded.
	Gen uint64 `json:"gen"`
	// Findings lists each detected fault with its outcome.
	Findings []Finding `json:"findings,omitempty"`
	// Quarantined maps store name -> partitions recovery gave up on.
	Quarantined map[string][]int `json:"quarantined,omitempty"`
}

// Clean reports whether recovery saw a fully healthy store.
func (r *RecoveryReport) Clean() bool { return len(r.Findings) == 0 }

// LoadOptions configure recovery.
type LoadOptions struct {
	// Rebuild maps store name -> snapshot reconstructor for CRC-proven
	// snapshot repair; stores without one quarantine on snapshot corruption.
	Rebuild map[string]SnapshotRebuilder
	// Metrics receives recovery counters; a fresh set is created when nil.
	Metrics *Metrics
	// PerFileReads restores the legacy loader — one os.ReadFile per segment
	// and reflective encoding/json envelope decode — instead of the batched
	// shared-buffer reader with the hand-rolled envelope scanner; kept for
	// benchmarking the two load paths against each other.
	PerFileReads bool
}

// Result is a recovered store directory.
type Result struct {
	Stores     map[string]*journal.Store
	Checkpoint []byte
	Report     *RecoveryReport
	Metrics    *Metrics
}

// repairAction is a pending on-disk fix fsck -repair can apply.
type repairAction struct {
	Path string
	Data []byte
}

// loader carries recovery state across one Load/Fsck pass.
type loader struct {
	dir     string
	man     *manifest
	metrics *Metrics
	rebuild map[string]SnapshotRebuilder
	report  *RecoveryReport
	repairs []repairAction
	perFile bool
}

// Load recovers the stores and checkpoint saved under dir, detecting and
// where possible repairing corruption. Unrecoverable partitions come back
// empty and are listed in Report.Quarantined — degraded mode is the
// caller's policy.
func Load(dir string, opts LoadOptions) (*Result, error) {
	l, err := newLoader(dir, opts)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Stores:  make(map[string]*journal.Store, len(l.man.Stores)),
		Report:  l.report,
		Metrics: l.metrics,
	}
	for _, sm := range l.man.Stores {
		st := journal.NewPartitioned(len(sm.Partitions))
		for pi, pm := range sm.Partitions {
			dump, ok := l.recoverPartition(sm.Name, pi, pm)
			if !ok {
				l.report.Quarantined[sm.Name] = append(l.report.Quarantined[sm.Name], pi)
				continue
			}
			if err := st.RestorePartition(pi, dump); err != nil {
				return nil, fmt.Errorf("durable: restore %s/p%04d: %w", sm.Name, pi, err)
			}
		}
		res.Stores[sm.Name] = st
	}
	cp, err := l.recoverCheckpoint()
	if err != nil {
		return nil, err
	}
	res.Checkpoint = cp
	return res, nil
}

func newLoader(dir string, opts LoadOptions) (*loader, error) {
	man, err := readManifest(dir)
	if err != nil {
		return nil, err
	}
	m := opts.Metrics
	if m == nil {
		m = NewMetrics()
	}
	return &loader{
		dir:     dir,
		man:     man,
		metrics: m,
		rebuild: opts.Rebuild,
		report:  &RecoveryReport{Gen: man.Gen, Quarantined: make(map[string][]int)},
		perFile: opts.PerFileReads,
	}, nil
}

func (l *loader) finding(f Finding) { l.report.Findings = append(l.report.Findings, f) }

// frameRec is one record slot in a partition's concatenated stream.
type frameRec struct {
	payload    []byte
	crc        uint32
	ok         bool
	file       string
	record     int
	offset     int64
	payloadOff int64
}

// recoverPartition reads, verifies, and decodes one partition's segment
// chain. ok=false means the partition is quarantined; every fault is logged
// as a Finding either way.
func (l *loader) recoverPartition(store string, pi int, pm partManifest) (journal.PartitionDump, bool) {
	quarantine := func(f Finding) (journal.PartitionDump, bool) {
		f.Store, f.Partition, f.Action = store, pi, ActionQuarantined
		l.finding(f)
		l.metrics.PartitionsQuarantined.Inc()
		return journal.PartitionDump{}, false
	}

	var stream []frameRec
	// One shared read for the whole chain; frames decoded below alias into
	// the batch buffer (see batchread.go).
	datas, readErrs := l.readSegments(pm.Segments)
	for si, sm := range pm.Segments {
		data, err := datas[si], readErrs[si]
		if err != nil {
			return quarantine(Finding{File: sm.File, Record: -1, Offset: -1,
				Fault: FaultMissing, Detail: err.Error()})
		}
		scan, err := scanSegment(data)
		if err != nil {
			return quarantine(Finding{File: sm.File, Record: -1, Offset: -1,
				Fault: FaultBadHeader, Detail: err.Error()})
		}
		if scan.Kind != KindJournal || scan.Partition != uint32(pi) {
			return quarantine(Finding{File: sm.File, Record: -1, Offset: -1,
				Fault: FaultBadHeader, Detail: "segment labeled for a different store slot"})
		}
		appendFrames := func(frames []Frame, base int) {
			for fi, fr := range frames {
				stream = append(stream, frameRec{
					payload: fr.Payload, crc: fr.StoredCRC, ok: fr.CRCOK,
					file: sm.File, record: base + fi, offset: fr.Offset, payloadOff: fr.PayloadOff,
				})
			}
		}
		if sm.Sealed {
			if !scan.Sealed || scan.FooterErr != nil {
				fault := FaultBadFooter
				if scan.Torn || len(scan.Frames) < sm.Records {
					fault = FaultTruncated
				}
				return quarantine(Finding{File: sm.File, Record: len(scan.Frames), Offset: scan.TornOffset,
					Fault: fault, Detail: "sealed segment lost its footer"})
			}
			if scan.FooterCount != uint64(sm.Records) || len(scan.Frames) != sm.Records {
				return quarantine(Finding{File: sm.File, Record: -1, Offset: -1,
					Fault: FaultBadFooter,
					Detail: fmt.Sprintf("footer says %d records, manifest %d, scanned %d",
						scan.FooterCount, sm.Records, len(scan.Frames))})
			}
			crcs := make([]uint32, len(scan.Frames))
			for i, fr := range scan.Frames {
				crcs[i] = fr.StoredCRC
			}
			if c := segCRC(crcs); c != scan.FooterSegCRC || c != sm.SegCRC {
				return quarantine(Finding{File: sm.File, Record: -1, Offset: -1,
					Fault: FaultBadFooter, Detail: "segment checksum disagrees with footer/manifest"})
			}
			appendFrames(scan.Frames, 0)
			continue
		}

		// Active segment: the only legal home for a torn tail.
		if scan.Sealed {
			return quarantine(Finding{File: sm.File, Record: -1, Offset: -1,
				Fault: FaultBadFooter, Detail: "unexpected footer on active segment"})
		}
		frames := scan.Frames
		tailBroken := scan.Torn
		if !tailBroken && len(frames) == sm.Records && sm.Records > 0 && !frames[len(frames)-1].CRCOK {
			// The tail record was overwritten in place rather than cut short.
			tailBroken = true
			frames = frames[:len(frames)-1]
		}
		if !tailBroken && len(frames) == sm.Records-1 {
			// The tail record was lost to a cut exactly on the frame boundary —
			// no torn bytes remain, but the doublewrite sidecar still covers it.
			tailBroken = true
		}
		if !tailBroken {
			if len(frames) != sm.Records {
				return quarantine(Finding{File: sm.File, Record: len(frames), Offset: -1,
					Fault:  FaultTruncated,
					Detail: fmt.Sprintf("%d records on disk, manifest says %d", len(frames), sm.Records)})
			}
			appendFrames(frames, 0)
			if si != len(pm.Segments)-1 {
				return quarantine(Finding{File: sm.File, Record: -1, Offset: -1,
					Fault: FaultBadFooter, Detail: "unsealed segment before the chain tail"})
			}
			continue
		}

		missing := sm.Records - len(frames)
		if missing != 1 {
			return quarantine(Finding{File: sm.File, Record: len(frames), Offset: scan.TornOffset,
				Fault:  FaultTruncated,
				Detail: fmt.Sprintf("torn write lost %d records; doublewrite covers 1", missing)})
		}
		restored, rerr := l.restoreTail(pm, sm, frames, data)
		if rerr != nil {
			return quarantine(Finding{File: sm.File, Record: len(frames), Offset: scan.TornOffset,
				Fault: FaultTornTail, Detail: rerr.Error()})
		}
		l.metrics.TailsTruncated.Inc()
		l.finding(Finding{Store: store, Partition: pi, File: sm.File,
			Record: len(frames), Offset: scan.TornOffset,
			Fault: FaultTornTail, Action: ActionRestoredTail,
			Detail: "truncated to last valid record; tail restored from doublewrite buffer"})
		appendFrames(frames, 0)
		stream = append(stream, frameRec{
			payload: restored, crc: Checksum(restored), ok: true,
			file: sm.File, record: len(frames), offset: -1,
		})
	}

	// Decode the record stream, attempting CRC-proven snapshot repair at
	// each corrupt record.
	pd := &partitionDecoder{fastDecode: !l.perFile}
	rebuild := l.rebuild[store]
	for _, fr := range stream {
		if !fr.ok {
			l.metrics.ChecksumFailures.Inc()
			cand, repaired := pd.tryRepair(fr.crc, rebuild)
			if !repaired {
				return quarantine(Finding{File: fr.file, Record: fr.record, Offset: fr.offset,
					Fault: FaultChecksum, Detail: "record failed CRC32C and could not be reconstructed"})
			}
			l.metrics.SnapshotsRebuilt.Inc()
			l.finding(Finding{Store: store, Partition: pi, File: fr.file,
				Record: fr.record, Offset: fr.offset,
				Fault: FaultChecksum, Action: ActionRebuiltSnapshot,
				Detail: "snapshot record reconstructed by replay; CRC32C proves byte-exact"})
			if len(cand) == len(fr.payload) && fr.payloadOff >= 0 {
				l.patchFile(fr.file, fr.payloadOff, cand)
			}
			fr.payload = cand
		} else {
			l.metrics.RecordsVerified.Inc()
		}
		if err := pd.next(fr.payload); err != nil {
			return quarantine(Finding{File: fr.file, Record: fr.record, Offset: fr.offset,
				Fault: FaultDecode, Detail: err.Error()})
		}
	}
	dump, err := pd.finish()
	if err != nil {
		file := ""
		if n := len(pm.Segments); n > 0 {
			file = pm.Segments[n-1].File
		}
		return quarantine(Finding{File: file, Record: -1, Offset: -1,
			Fault: FaultDecode, Detail: err.Error()})
	}
	return dump, true
}

// restoreTail validates the doublewrite sidecar against the manifest's
// segment checksum and, on proof, queues the corrected segment file. It
// returns the restored tail record payload.
func (l *loader) restoreTail(pm partManifest, sm segManifest, valid []Frame, data []byte) ([]byte, error) {
	if pm.DWB == "" {
		return nil, fmt.Errorf("no doublewrite sidecar")
	}
	raw, err := os.ReadFile(filepath.Join(l.dir, pm.DWB))
	if err != nil {
		return nil, fmt.Errorf("doublewrite sidecar: %w", err)
	}
	payload, err := decodeSingleRecord(raw, KindDWB)
	if err != nil {
		return nil, fmt.Errorf("doublewrite sidecar: %w", err)
	}
	crcs := make([]uint32, 0, len(valid)+1)
	for _, fr := range valid {
		crcs = append(crcs, fr.StoredCRC)
	}
	crcs = append(crcs, Checksum(payload))
	if segCRC(crcs) != sm.SegCRC {
		return nil, fmt.Errorf("doublewrite record does not complete the segment checksum")
	}
	// Corrected file: the intact prefix plus the re-framed tail record.
	end := int64(headerSize)
	if n := len(valid); n > 0 {
		end = valid[n-1].PayloadOff + int64(len(valid[n-1].Payload))
	}
	fixed := make([]byte, 0, int(end)+frameHeader+len(payload))
	fixed = append(fixed, data[:end]...)
	var frame segmentBuilder
	frame.append(payload)
	fixed = append(fixed, frame.buf...)
	l.repairs = append(l.repairs, repairAction{Path: filepath.Join(l.dir, sm.File), Data: fixed})
	return payload, nil
}

// patchFile queues an in-place payload rewrite for fsck -repair.
func (l *loader) patchFile(rel string, payloadOff int64, payload []byte) {
	path := filepath.Join(l.dir, rel)
	data, err := os.ReadFile(path)
	if err != nil || payloadOff+int64(len(payload)) > int64(len(data)) {
		return
	}
	fixed := append([]byte(nil), data...)
	copy(fixed[payloadOff:], payload)
	l.repairs = append(l.repairs, repairAction{Path: path, Data: fixed})
}

// recoverCheckpoint loads the manifest generation's checkpoint, repairing a
// stale CURRENT hint and falling back to the mirror copy on corruption.
func (l *loader) recoverCheckpoint() ([]byte, error) {
	gen := l.man.Gen
	curRel := filepath.Join("checkpoint", "CURRENT")
	raw, err := os.ReadFile(filepath.Join(l.dir, curRel))
	cur, perr := strconv.ParseUint(strings.TrimSpace(string(raw)), 10, 64)
	if err != nil || perr != nil || cur != gen {
		detail := fmt.Sprintf("CURRENT names generation %d; manifest pins %d", cur, gen)
		if err != nil {
			detail = "CURRENT unreadable: " + err.Error()
		}
		l.finding(Finding{Store: "checkpoint", Partition: -1, File: curRel,
			Record: -1, Offset: -1,
			Fault: FaultStaleCurrent, Action: ActionRescannedGen, Detail: detail})
		l.repairs = append(l.repairs, repairAction{
			Path: filepath.Join(l.dir, curRel),
			Data: []byte(strconv.FormatUint(gen, 10) + "\n"),
		})
	}

	aRel := filepath.Join("checkpoint", fmt.Sprintf("cp-%06d.a", gen))
	bRel := filepath.Join("checkpoint", fmt.Sprintf("cp-%06d.b", gen))
	primary, perr2 := readCheckpointFile(filepath.Join(l.dir, aRel))
	if perr2 == nil {
		return primary, nil
	}
	l.metrics.CheckpointFallbacks.Inc()
	l.finding(Finding{Store: "checkpoint", Partition: -1, File: aRel,
		Record: 0, Offset: -1,
		Fault: FaultCheckpoint, Action: ActionFellBack, Detail: perr2.Error()})
	mirror, merr := readCheckpointFile(filepath.Join(l.dir, bRel))
	if merr != nil {
		return nil, fmt.Errorf("durable: checkpoint generation %d unrecoverable: primary %s: %v; mirror %s: %w",
			gen, aRel, perr2, bRel, merr)
	}
	if raw, err := os.ReadFile(filepath.Join(l.dir, bRel)); err == nil {
		l.repairs = append(l.repairs, repairAction{Path: filepath.Join(l.dir, aRel), Data: raw})
	}
	return mirror, nil
}

func readCheckpointFile(path string) ([]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return decodeSingleRecord(data, KindCheckpoint)
}
