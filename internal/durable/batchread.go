package durable

// Batched segment reads: recovery used to issue one os.ReadFile per segment
// file, paying a buffer allocation and a kernel round trip per file. A
// partition's chain is instead sized with one stat pass and read back-to-back
// into a single shared buffer; scanSegment already aliases frame payloads
// into the bytes it is handed, so the whole decode pipeline — CRC checks,
// snapshot repair, partition restore — runs zero-copy over that one buffer.
//
// Fidelity with the per-file reader is part of the contract: open errors,
// short files, and read errors must surface exactly as os.ReadFile reported
// them, because fsck golden fixtures pin Finding.Detail strings. Files that
// change size between stat and read (nothing the engine itself does) fall
// back to os.ReadFile for that file.

import (
	"io"
	"os"
	"path/filepath"
)

// readSegments reads every segment file of one partition chain, returning
// per-file contents and errors positionally. With LoadOptions.PerFileReads
// (the legacy A/B path) each file gets its own buffer; otherwise all files
// share one allocation.
func (l *loader) readSegments(segs []segManifest) ([][]byte, []error) {
	datas := make([][]byte, len(segs))
	errs := make([]error, len(segs))
	if l.perFile {
		for i, sm := range segs {
			datas[i], errs[i] = os.ReadFile(filepath.Join(l.dir, sm.File))
		}
		return datas, errs
	}
	offs := make([]int64, len(segs)+1)
	for i, sm := range segs {
		var size int64
		if fi, err := os.Stat(filepath.Join(l.dir, sm.File)); err == nil {
			size = fi.Size()
		}
		// A failed stat reserves zero bytes; the open below produces the
		// authoritative (os.ReadFile-identical) error.
		offs[i+1] = offs[i] + size
	}
	buf := make([]byte, offs[len(segs)])
	for i, sm := range segs {
		path := filepath.Join(l.dir, sm.File)
		f, err := os.Open(path)
		if err != nil {
			errs[i] = err
			continue
		}
		dst := buf[offs[i]:offs[i+1]]
		n, rerr := io.ReadFull(f, dst)
		switch rerr {
		case nil:
			// Confirm EOF; a grown file re-reads through the plain path.
			var probe [1]byte
			if m, _ := f.Read(probe[:]); m > 0 {
				f.Close()
				datas[i], errs[i] = os.ReadFile(path)
				continue
			}
			datas[i] = dst
		case io.EOF, io.ErrUnexpectedEOF:
			// File shrank since stat: these are the bytes ReadFile would
			// have seen at read time.
			datas[i] = dst[:n]
		default:
			errs[i] = rerr
		}
		f.Close()
	}
	return datas, errs
}
