package durable

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"censysmap/internal/journal"
)

// fixtureStore builds a 2-partition journal with enough events per row that
// Save spills sealed segments (RecordsPerSegment below) plus an active tail.
func fixtureStore(t *testing.T) *journal.Store {
	t.Helper()
	s := journal.NewPartitioned(2)
	base := time.Unix(0, 1700000000e9).UTC()
	for i := 0; i < 6; i++ {
		entity := fmt.Sprintf("10.0.0.%d", i)
		ts := base.Add(time.Duration(i) * time.Minute)
		if _, err := s.Append(entity, ts, "service_observed", []byte(`{"port":443}`)); err != nil {
			t.Fatal(err)
		}
		if _, err := s.AppendSnapshot(entity, ts, []byte(`{"state":"up"}`)); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Append(entity, ts.Add(time.Second), "service_observed", []byte(`{"port":80}`)); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

// saveFixture persists the fixture store with small segments so sealed files,
// the active tail, and the dwb sidecar all exist.
func saveFixture(t *testing.T, dir string, s *journal.Store) {
	t.Helper()
	err := Save(dir, []NamedStore{{Name: "journal", Store: s}}, []byte(`{"tick":42}`),
		SaveOptions{RecordsPerSegment: 4})
	if err != nil {
		t.Fatal(err)
	}
}

func dumpAll(s *journal.Store) []journal.PartitionDump {
	out := make([]journal.PartitionDump, s.Partitions())
	for i := range out {
		out[i] = s.DumpPartition(i)
	}
	return out
}

// fixtureRebuilder reconstructs the fixture's snapshot payload: every
// snapshot in fixtureStore carries the same state blob.
func fixtureRebuilder(entity string, prior []journal.Event) ([]byte, error) {
	return []byte(`{"state":"up"}`), nil
}

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := fixtureStore(t)
	saveFixture(t, dir, s)

	res, err := Load(dir, LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Report.Clean() {
		t.Fatalf("clean store produced findings: %+v", res.Report.Findings)
	}
	if string(res.Checkpoint) != `{"tick":42}` {
		t.Fatalf("checkpoint = %q", res.Checkpoint)
	}
	got, ok := res.Stores["journal"]
	if !ok {
		t.Fatal("journal store missing from result")
	}
	if !reflect.DeepEqual(dumpAll(s), dumpAll(got)) {
		t.Fatal("loaded dumps differ from saved store")
	}
	if v := res.Metrics.RecordsVerified.Value(); v == 0 {
		t.Fatal("records verified counter did not move")
	}
}

func TestSaveBumpsGeneration(t *testing.T) {
	dir := t.TempDir()
	s := fixtureStore(t)
	saveFixture(t, dir, s)
	saveFixture(t, dir, s)
	res, err := Load(dir, LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.Gen != 2 {
		t.Fatalf("gen = %d, want 2", res.Report.Gen)
	}
}

// corruptMatching flips one payload byte of the first record whose payload
// contains needle, in any segment under dir/stores/journal, and returns the
// file it hit.
func corruptMatching(t *testing.T, dir, needle string) string {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join(dir, "stores", "journal", "p*", "seg-*.seg"))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		scan, err := InspectSegment(data)
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range scan.Frames {
			if !bytes.Contains(f.Payload, []byte(needle)) {
				continue
			}
			data[f.PayloadOff+1] ^= 0x20
			if err := os.WriteFile(p, data, 0o644); err != nil {
				t.Fatal(err)
			}
			return p
		}
	}
	t.Fatalf("no record containing %q found", needle)
	return ""
}

func TestLoadRepairsSnapshotByCRCProof(t *testing.T) {
	dir := t.TempDir()
	s := fixtureStore(t)
	saveFixture(t, dir, s)
	corruptMatching(t, dir, `"kind":"snapshot"`)

	res, err := Load(dir, LoadOptions{
		Rebuild: map[string]SnapshotRebuilder{"journal": fixtureRebuilder},
	})
	if err != nil {
		t.Fatal(err)
	}
	var rebuilt bool
	for _, f := range res.Report.Findings {
		if f.Fault == FaultChecksum && f.Action == ActionRebuiltSnapshot {
			rebuilt = true
		}
	}
	if !rebuilt {
		t.Fatalf("no rebuilt_snapshot finding: %+v", res.Report.Findings)
	}
	if len(res.Report.Quarantined) != 0 {
		t.Fatalf("repairable fault quarantined: %v", res.Report.Quarantined)
	}
	if !reflect.DeepEqual(dumpAll(s), dumpAll(res.Stores["journal"])) {
		t.Fatal("repaired store differs from original")
	}
	if v := res.Metrics.SnapshotsRebuilt.Value(); v != 1 {
		t.Fatalf("snapshots rebuilt = %d, want 1", v)
	}
	// Without a rebuilder the same fault condemns the partition.
	dir2 := t.TempDir()
	saveFixture(t, dir2, s)
	corruptMatching(t, dir2, `"kind":"snapshot"`)
	res2, err := Load(dir2, LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Report.Quarantined["journal"]) != 1 {
		t.Fatalf("quarantined = %v, want one partition", res2.Report.Quarantined)
	}
}

func TestLoadRestoresTornTailFromDoublewrite(t *testing.T) {
	dir := t.TempDir()
	s := fixtureStore(t)
	saveFixture(t, dir, s)

	// Tear the active segment of partition 0: cut mid-way into its final record.
	var active string
	paths, _ := filepath.Glob(filepath.Join(dir, "stores", "journal", "p0000", "seg-*.seg"))
	for _, p := range paths {
		data, _ := os.ReadFile(p)
		if scan, err := InspectSegment(data); err == nil && !scan.Sealed {
			active = p
		}
	}
	if active == "" {
		t.Fatal("no active segment found")
	}
	data, err := os.ReadFile(active)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(active, data[:len(data)-5], 0o644); err != nil {
		t.Fatal(err)
	}

	res, err := Load(dir, LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var restored bool
	for _, f := range res.Report.Findings {
		if f.Fault == FaultTornTail && f.Action == ActionRestoredTail {
			restored = true
		}
	}
	if !restored {
		t.Fatalf("no truncated_restored finding: %+v", res.Report.Findings)
	}
	if !reflect.DeepEqual(dumpAll(s), dumpAll(res.Stores["journal"])) {
		t.Fatal("tail-restored store differs from original")
	}
	if v := res.Metrics.TailsTruncated.Value(); v != 1 {
		t.Fatalf("tails truncated = %d, want 1", v)
	}
}

func TestLoadQuarantinesMissingSegment(t *testing.T) {
	dir := t.TempDir()
	s := fixtureStore(t)
	saveFixture(t, dir, s)
	paths, _ := filepath.Glob(filepath.Join(dir, "stores", "journal", "p0001", "seg-000000.seg"))
	if len(paths) != 1 {
		t.Fatalf("fixture layout changed: %v", paths)
	}
	if err := os.Remove(paths[0]); err != nil {
		t.Fatal(err)
	}
	res, err := Load(dir, LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Report.Quarantined["journal"]; len(got) != 1 || got[0] != 1 {
		t.Fatalf("quarantined = %v, want [1]", got)
	}
	// The healthy partition must still load bit-identically.
	if !reflect.DeepEqual(s.DumpPartition(0), res.Stores["journal"].DumpPartition(0)) {
		t.Fatal("healthy partition 0 differs after quarantine of partition 1")
	}
	if v := res.Metrics.PartitionsQuarantined.Value(); v != 1 {
		t.Fatalf("partitions quarantined = %d, want 1", v)
	}
}

func TestLoadCheckpointMirrorAndStaleCurrent(t *testing.T) {
	dir := t.TempDir()
	s := fixtureStore(t)
	saveFixture(t, dir, s)

	// Corrupt the primary checkpoint payload; the .b mirror must serve it.
	primary := filepath.Join(dir, "checkpoint", "cp-000001.a")
	data, err := os.ReadFile(primary)
	if err != nil {
		t.Fatal(err)
	}
	data[headerSize+frameHeader+3] ^= 0x08
	if err := os.WriteFile(primary, data, 0o644); err != nil {
		t.Fatal(err)
	}
	// And stale the CURRENT hint.
	if err := os.WriteFile(filepath.Join(dir, "checkpoint", "CURRENT"), []byte("0\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	res, err := Load(dir, LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if string(res.Checkpoint) != `{"tick":42}` {
		t.Fatalf("checkpoint = %q, want the saved blob via the mirror", res.Checkpoint)
	}
	var stale, fellBack bool
	for _, f := range res.Report.Findings {
		if f.Fault == FaultStaleCurrent {
			stale = true
		}
		if f.Fault == FaultCheckpoint && f.Action == ActionFellBack {
			fellBack = true
		}
	}
	if !stale || !fellBack {
		t.Fatalf("stale=%v fallback=%v; findings: %+v", stale, fellBack, res.Report.Findings)
	}
	if v := res.Metrics.CheckpointFallbacks.Value(); v != 1 {
		t.Fatalf("checkpoint fallbacks = %d, want 1", v)
	}
}

// TestFindingContext: recovery errors carry partition/segment/offset context.
func TestFindingContext(t *testing.T) {
	dir := t.TempDir()
	s := fixtureStore(t)
	saveFixture(t, dir, s)
	hit := corruptMatching(t, dir, `"kind":"service_observed"`)
	res, err := Load(dir, LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rel, err := filepath.Rel(dir, hit)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range res.Report.Findings {
		if f.Fault != FaultChecksum {
			continue
		}
		if f.File != rel {
			t.Errorf("finding file = %q, want %q", f.File, rel)
		}
		if f.Store != "journal" || f.Partition < 0 || f.Record < 0 || f.Offset <= 0 {
			t.Errorf("finding lacks context: %+v", f)
		}
		return
	}
	t.Fatalf("no checksum finding: %+v", res.Report.Findings)
}

func TestFsckRepairMakesStoreClean(t *testing.T) {
	dir := t.TempDir()
	s := fixtureStore(t)
	saveFixture(t, dir, s)
	corruptMatching(t, dir, `"kind":"snapshot"`)
	if err := os.WriteFile(filepath.Join(dir, "checkpoint", "CURRENT"), []byte("0\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	opts := FsckOptions{Rebuild: map[string]SnapshotRebuilder{"journal": fixtureRebuilder}}
	rep, err := Fsck(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clean || len(rep.Findings) == 0 {
		t.Fatalf("fsck missed the faults: %+v", rep)
	}
	if len(rep.Repaired) != 0 {
		t.Fatalf("repaired without -repair: %v", rep.Repaired)
	}

	opts.Repair = true
	rep, err = Fsck(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Repaired) == 0 {
		t.Fatal("repair pass rewrote nothing")
	}
	for _, p := range rep.Repaired {
		if !strings.HasPrefix(p, dir) {
			t.Fatalf("repair outside store dir: %s", p)
		}
	}

	rep, err = Fsck(dir, FsckOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean {
		t.Fatalf("store still dirty after repair: %+v", rep.Findings)
	}
}
