package durable

import (
	"fmt"
	"sort"
)

// FsckOptions configure an offline verification pass.
type FsckOptions struct {
	// Rebuild supplies snapshot reconstructors per store, exactly as for
	// Load — fsck decides repairability with the same machinery recovery
	// uses.
	Rebuild map[string]SnapshotRebuilder
	// Repair applies every provable fix in place: torn tails truncated and
	// restored from the doublewrite buffer, CRC-proven snapshot rewrites, a
	// stale CURRENT hint, and a corrupt checkpoint primary re-mirrored.
	// Quarantine-class faults are reported but never "repaired" — there is
	// nothing to restore them from.
	Repair bool
}

// FsckReport is the offline verification verdict.
type FsckReport struct {
	// Gen is the generation verified.
	Gen uint64 `json:"gen"`
	// Clean is true when no fault of any kind was found.
	Clean bool `json:"clean"`
	// RecordsVerified counts CRC-valid records across all stores.
	RecordsVerified uint64 `json:"records_verified"`
	// Findings lists each fault with the action recovery takes for it.
	Findings []Finding `json:"findings,omitempty"`
	// Quarantined maps store -> partitions recovery would give up on.
	Quarantined map[string][]int `json:"quarantined,omitempty"`
	// Repaired lists files rewritten (only when Repair was set).
	Repaired []string `json:"repaired,omitempty"`
}

// Fsck verifies (and with opts.Repair, repairs) a store directory offline.
// It runs the exact decode-and-recover path Load uses, so its verdict is the
// recovery outcome: a clean report means Load reproduces the saved state
// bit-for-bit; findings name the exact file, record, and byte offset of each
// fault.
func Fsck(dir string, opts FsckOptions) (*FsckReport, error) {
	l, err := newLoader(dir, LoadOptions{Rebuild: opts.Rebuild})
	if err != nil {
		return nil, err
	}
	for _, sm := range l.man.Stores {
		for pi, pm := range sm.Partitions {
			if _, ok := l.recoverPartition(sm.Name, pi, pm); !ok {
				l.report.Quarantined[sm.Name] = append(l.report.Quarantined[sm.Name], pi)
			}
		}
	}
	if _, err := l.recoverCheckpoint(); err != nil {
		// An unrecoverable checkpoint is a finding, not an fsck failure —
		// the operator needs the report to see it.
		l.finding(Finding{Store: "checkpoint", Partition: -1, Record: -1, Offset: -1,
			Fault: FaultCheckpoint, Action: ActionQuarantined, Detail: err.Error()})
	}

	rep := &FsckReport{
		Gen:             l.report.Gen,
		Clean:           l.report.Clean(),
		RecordsVerified: l.metrics.RecordsVerified.Value(),
		Findings:        l.report.Findings,
		Quarantined:     l.report.Quarantined,
	}
	if opts.Repair {
		for _, ra := range l.repairs {
			if err := writeFileAtomic(ra.Path, ra.Data); err != nil {
				return rep, fmt.Errorf("durable: fsck repair %s: %w", ra.Path, err)
			}
			rep.Repaired = append(rep.Repaired, ra.Path)
		}
		sort.Strings(rep.Repaired)
	}
	return rep, nil
}
