package durable

import (
	"bytes"
	"errors"
	"testing"
)

// buildSegment frames payloads into one segment file for tests.
func buildSegment(t *testing.T, kind SegmentKind, partition uint32, sealed bool, payloads ...[]byte) []byte {
	t.Helper()
	b := newSegment(kind, partition)
	for _, p := range payloads {
		b.append(p)
	}
	return b.bytes(sealed)
}

func TestSegmentRoundTrip(t *testing.T) {
	payloads := [][]byte{[]byte(`{"t":"meta"}`), []byte("second"), {}, []byte("fourth")}
	for _, sealed := range []bool{false, true} {
		data := buildSegment(t, KindJournal, 7, sealed, payloads...)
		recs, err := DecodeSegment(data)
		if err != nil {
			t.Fatalf("sealed=%v: %v", sealed, err)
		}
		if len(recs) != len(payloads) {
			t.Fatalf("sealed=%v: %d records, want %d", sealed, len(recs), len(payloads))
		}
		for i := range recs {
			if !bytes.Equal(recs[i], payloads[i]) {
				t.Fatalf("sealed=%v: record %d = %q, want %q", sealed, i, recs[i], payloads[i])
			}
		}
		s, err := InspectSegment(data)
		if err != nil {
			t.Fatal(err)
		}
		if s.Kind != KindJournal || s.Partition != 7 || s.Sealed != sealed {
			t.Fatalf("scan kind=%d partition=%d sealed=%v", s.Kind, s.Partition, s.Sealed)
		}
		if sealed && s.FooterCount != uint64(len(payloads)) {
			t.Fatalf("footer count %d, want %d", s.FooterCount, len(payloads))
		}
	}
}

func TestDecodeTypedErrors(t *testing.T) {
	base := func(sealed bool) []byte {
		return buildSegment(t, KindJournal, 0, sealed,
			[]byte("record-zero"), []byte("record-one"), []byte("record-two"))
	}
	cases := []struct {
		name    string
		data    []byte
		wantErr error
		// prefix is how many records must still decode before the error.
		prefix int
	}{
		{"empty file", nil, ErrBadHeader, 0},
		{"wrong magic", []byte("NOTSEG\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00"), ErrBadHeader, 0},
		{"bad version", func() []byte {
			d := base(false)
			d[6] = 99
			return d
		}(), ErrBadHeader, 0},
		{"unknown kind", func() []byte {
			d := base(false)
			d[7] = 200
			return d
		}(), ErrBadHeader, 0},
		{"mid-file bit flip", func() []byte {
			d := base(true)
			d[headerSize+frameHeader+2] ^= 0x40 // inside record 0's payload
			return d
		}(), ErrChecksum, 0},
		{"flip in sealed tail record", func() []byte {
			d := base(true)
			d[len(d)-footerSize-2] ^= 0x01 // last payload byte of record 2
			return d
		}(), ErrChecksum, 2},
		{"torn mid-payload", func() []byte {
			d := base(false)
			return d[:len(d)-4] // cut inside the final record
		}(), ErrTornTail, 2},
		{"torn mid-frame-header", func() []byte {
			d := base(false)
			last := len("record-two") + 3 // payload + part of the frame header
			return d[:len(d)-last]
		}(), ErrTornTail, 2},
		{"unsealed tail flip is torn", func() []byte {
			d := base(false)
			d[len(d)-1] ^= 0x10
			return d
		}(), ErrTornTail, 2},
		{"footer self-checksum", func() []byte {
			d := base(true)
			d[len(d)-1] ^= 0x01
			return d
		}(), ErrBadFooter, 3},
		{"footer count", func() []byte {
			d := base(true)
			d[len(d)-10] ^= 0x01 // inside the count field
			// Re-seal the self-CRC so only the count disagrees.
			foot := d[len(d)-footerSize:]
			c := Checksum(foot[:20])
			foot[20], foot[21], foot[22], foot[23] = byte(c>>24), byte(c>>16), byte(c>>8), byte(c)
			return d
		}(), ErrBadFooter, 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			recs, err := DecodeSegment(tc.data)
			if !errors.Is(err, tc.wantErr) {
				t.Fatalf("err = %v, want %v", err, tc.wantErr)
			}
			if len(recs) != tc.prefix {
				t.Fatalf("decoded prefix %d records, want %d", len(recs), tc.prefix)
			}
		})
	}
}

// FuzzSegmentDecode: the decoder must never panic, never over-read, and fail
// only with one of the typed errors, no matter what bytes it is fed. The seed
// corpus is valid segments plus one hand-corrupted variant per fault class.
func FuzzSegmentDecode(f *testing.F) {
	valid := func(sealed bool) []byte {
		b := newSegment(KindJournal, 3)
		b.append([]byte(`{"t":"meta","meta":{"appends":2}}`))
		b.append([]byte(`{"t":"row","row":{"entity":"10.0.0.1"}}`))
		b.append([]byte(`{"t":"ev","ev":{"seq":1,"kind":"service_observed"}}`))
		return b.bytes(sealed)
	}
	f.Add(valid(true))
	f.Add(valid(false))
	f.Add(buildSingleRecord(KindCheckpoint, 0, []byte(`{"tick":12}`)))
	f.Add([]byte{})
	f.Add([]byte(segMagic))
	// One corrupted seed per fault class.
	flip := valid(true)
	flip[headerSize+frameHeader] ^= 0x80 // ErrChecksum
	f.Add(flip)
	f.Add(valid(false)[:len(valid(false))-3]) // ErrTornTail
	badFoot := valid(true)
	badFoot[len(badFoot)-5] ^= 0x01 // ErrBadFooter
	f.Add(badFoot)
	badHdr := valid(true)
	badHdr[1] = 'X' // ErrBadHeader
	f.Add(badHdr)
	// A frame whose length field claims far more bytes than exist.
	lie := valid(false)
	lie[headerSize] = 0xFF
	f.Add(lie)

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, err := DecodeSegment(data)
		if err != nil {
			for _, typed := range []error{ErrBadHeader, ErrChecksum, ErrTornTail, ErrBadFooter} {
				if errors.Is(err, typed) {
					return
				}
			}
			t.Fatalf("untyped decode error: %v", err)
		}
		// Decoded payload bytes can never exceed the input.
		var total int
		for _, r := range recs {
			total += len(r)
		}
		if total > len(data) {
			t.Fatalf("decoded %d payload bytes from %d input bytes", total, len(data))
		}
		if _, err := InspectSegment(data); err != nil {
			t.Fatalf("scan failed on decodable input: %v", err)
		}
	})
}
