package durable

import (
	"encoding/base64"

	"censysmap/internal/journal"
)

// Fast envelope decode for the batched recovery path.
//
// marshalEnvelope always emits one of three fixed byte shapes (encoding/json
// over fixed structs: declared field order, no whitespace, omitempty payload).
// parseFast scans exactly those shapes with monotone cursors — no reflection,
// no per-record envelope allocation — and bails out to the encoding/json
// decoder on ANY deviation: reordered keys, escape sequences, non-ASCII,
// numeric overflow, bad base64. The fallback guarantees decode results and
// error text stay identical to the legacy loader; the per-file/batched
// differential suite and the chaos-disk gate hold the two paths equal.

// envSpan is a monotone cursor over one record payload.
type envSpan struct {
	b []byte
	i int
}

// lit consumes the exact literal p, or reports false without advancing past
// a partial match (callers treat false as "try the next shape / fall back").
func (s *envSpan) lit(p string) bool {
	if len(s.b)-s.i < len(p) || string(s.b[s.i:s.i+len(p)]) != p {
		return false
	}
	s.i += len(p)
	return true
}

// u64 consumes a canonical JSON integer (no sign, no leading zeros) with
// overflow detection.
func (s *envSpan) u64() (uint64, bool) {
	start := s.i
	var n uint64
	for s.i < len(s.b) {
		c := s.b[s.i]
		if c < '0' || c > '9' {
			break
		}
		d := uint64(c - '0')
		const max = 1<<64 - 1
		if n > max/10 || n*10 > max-d {
			return 0, false
		}
		n = n*10 + d
		s.i++
	}
	if s.i == start || (s.b[start] == '0' && s.i-start > 1) {
		return 0, false
	}
	return n, true
}

// i64 consumes an optionally-signed canonical JSON integer. Magnitudes at
// the int64 boundary fall back to encoding/json rather than risk an edge.
func (s *envSpan) i64() (int64, bool) {
	neg := false
	if s.i < len(s.b) && s.b[s.i] == '-' {
		neg = true
		s.i++
	}
	n, ok := s.u64()
	if !ok || n > 1<<63-1 {
		return 0, false
	}
	if neg {
		return -int64(n), true
	}
	return int64(n), true
}

// str consumes a string body plus its closing quote. Only printable ASCII
// with no escapes qualifies — anything else (escape sequences, UTF-8, raw
// control bytes) is left for the encoding/json fallback, which owns the
// unescaping and error semantics for those cases.
func (s *envSpan) str() ([]byte, bool) {
	start := s.i
	for s.i < len(s.b) {
		c := s.b[s.i]
		if c == '"' {
			out := s.b[start:s.i]
			s.i++
			return out, true
		}
		if c < 0x20 || c == '\\' || c >= 0x80 {
			return nil, false
		}
		s.i++
	}
	return nil, false
}

// internKind returns a shared string for the well-known event kinds (the
// write side's cqrs kinds plus the journal snapshot marker) so steady-state
// decode doesn't allocate a fresh kind string per event. Unknown kinds are
// copied as usual.
func internKind(b []byte) string {
	switch string(b) {
	case journal.SnapshotKind:
		return journal.SnapshotKind
	case "service_found":
		return "service_found"
	case "service_changed":
		return "service_changed"
	case "service_pending":
		return "service_pending"
	case "service_restored":
		return "service_restored"
	case "service_removed":
		return "service_removed"
	}
	return string(b)
}

// parseFast decodes one record payload if it matches a canonical envelope
// shape exactly. The returned envelope aliases the decoder's scratch structs,
// which apply consumes before the next record — only the entity string and
// the base64-decoded event payload allocate.
func (pd *partitionDecoder) parseFast(payload []byte) (envelope, bool) {
	s := envSpan{b: payload}
	if !s.lit(`{"t":"`) {
		return envelope{}, false
	}
	switch {
	case s.lit(`ev","ev":{"seq":`):
		ev := &pd.scratchEv
		*ev = evRec{}
		var ok bool
		if ev.Seq, ok = s.u64(); !ok {
			return envelope{}, false
		}
		if !s.lit(`,"ns":`) {
			return envelope{}, false
		}
		if ev.NS, ok = s.i64(); !ok {
			return envelope{}, false
		}
		if !s.lit(`,"kind":"`) {
			return envelope{}, false
		}
		kind, ok := s.str()
		if !ok {
			return envelope{}, false
		}
		ev.Kind = internKind(kind)
		if s.lit(`,"payload":"`) {
			raw, ok := s.str()
			if !ok {
				return envelope{}, false
			}
			// Same decoder encoding/json uses for []byte, so a success here
			// is byte-identical to the fallback; errors defer to it.
			dec := make([]byte, base64.StdEncoding.DecodedLen(len(raw)))
			n, err := base64.StdEncoding.Decode(dec, raw)
			if err != nil {
				return envelope{}, false
			}
			ev.Payload = dec[:n]
		}
		if !s.lit("}}") || s.i != len(s.b) {
			return envelope{}, false
		}
		return envelope{T: "ev", Ev: ev}, true

	case s.lit(`row","row":{"entity":"`):
		row := &pd.scratchRow
		*row = rowRec{}
		ent, ok := s.str()
		if !ok {
			return envelope{}, false
		}
		row.Entity = string(ent)
		if !s.lit(`,"last_snap":`) {
			return envelope{}, false
		}
		var n int64
		if n, ok = s.i64(); !ok {
			return envelope{}, false
		}
		row.LastSnap = int(n)
		if !s.lit(`,"next_seq":`) {
			return envelope{}, false
		}
		if row.NextSeq, ok = s.u64(); !ok {
			return envelope{}, false
		}
		if !s.lit(`,"hdd":`) {
			return envelope{}, false
		}
		if n, ok = s.i64(); !ok {
			return envelope{}, false
		}
		row.HDD = int(n)
		if !s.lit(`,"events":`) {
			return envelope{}, false
		}
		if n, ok = s.i64(); !ok {
			return envelope{}, false
		}
		row.Events = int(n)
		if !s.lit("}}") || s.i != len(s.b) {
			return envelope{}, false
		}
		return envelope{T: "row", Row: row}, true

	case s.lit(`meta","meta":{"ssd_reads":`):
		m := &pd.scratchMeta
		*m = metaRec{}
		var ok bool
		if m.SSDReads, ok = s.u64(); !ok {
			return envelope{}, false
		}
		if !s.lit(`,"hdd_reads":`) {
			return envelope{}, false
		}
		if m.HDDReads, ok = s.u64(); !ok {
			return envelope{}, false
		}
		if !s.lit(`,"appends":`) {
			return envelope{}, false
		}
		if m.Appends, ok = s.u64(); !ok {
			return envelope{}, false
		}
		if !s.lit(`,"snaps":`) {
			return envelope{}, false
		}
		if m.Snaps, ok = s.u64(); !ok {
			return envelope{}, false
		}
		if !s.lit("}}") || s.i != len(s.b) {
			return envelope{}, false
		}
		return envelope{T: "meta", Meta: m}, true
	}
	return envelope{}, false
}
