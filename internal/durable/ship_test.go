package durable

import (
	"bytes"
	"errors"
	"testing"
)

func TestBuildSegmentRoundTrip(t *testing.T) {
	records := [][]byte{[]byte(`{"t":"ev","seq":0}`), []byte(`{"t":"ev","seq":1}`), []byte(`{"t":"ctl"}`)}
	for _, sealed := range []bool{true, false} {
		data := BuildSegment(KindReplica, 3, records, sealed)
		got, err := DecodeShippedSegment(data, KindReplica, 3)
		if err != nil {
			t.Fatalf("sealed=%v: %v", sealed, err)
		}
		if len(got) != len(records) {
			t.Fatalf("sealed=%v: %d records, want %d", sealed, len(got), len(records))
		}
		for i := range records {
			if !bytes.Equal(got[i], records[i]) {
				t.Fatalf("sealed=%v: record %d = %q, want %q", sealed, i, got[i], records[i])
			}
		}
		scan, err := InspectSegment(data)
		if err != nil {
			t.Fatal(err)
		}
		if scan.Sealed != sealed || scan.Kind != KindReplica || scan.Partition != 3 {
			t.Fatalf("scan = %+v, want sealed=%v kind=%d partition=3", scan, sealed, KindReplica)
		}
	}
}

func TestDecodeShippedSegmentRejectsMismatch(t *testing.T) {
	data := BuildSegment(KindReplica, 2, [][]byte{[]byte("x")}, true)
	if _, err := DecodeShippedSegment(data, KindReplica, 5); !errors.Is(err, ErrBadHeader) {
		t.Fatalf("wrong partition accepted: %v", err)
	}
	if _, err := DecodeShippedSegment(data, KindJournal, 2); !errors.Is(err, ErrBadHeader) {
		t.Fatalf("wrong kind accepted: %v", err)
	}
}

func TestDecodeShippedSegmentDetectsCorruption(t *testing.T) {
	data := BuildSegment(KindReplica, 0, [][]byte{[]byte("payload-a"), []byte("payload-b")}, true)
	// Flip one payload bit: the follower must refuse the whole ship.
	corrupt := append([]byte(nil), data...)
	corrupt[headerSize+frameHeader+2] ^= 1
	if _, err := DecodeShippedSegment(corrupt, KindReplica, 0); !errors.Is(err, ErrChecksum) {
		t.Fatalf("corrupted ship decoded: %v", err)
	}
	// Truncate the sealed footer: also refused.
	if _, err := DecodeShippedSegment(data[:len(data)-4], KindReplica, 0); err == nil {
		t.Fatal("footer-truncated ship decoded cleanly")
	}
}

func TestShipStateRoundTrip(t *testing.T) {
	want := ShipState{Partition: 4, Generation: 7, Epoch: 3, Applied: 129}
	got, err := DecodeShipState(want.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("round trip = %+v, want %+v", got, want)
	}
	if _, err := DecodeShipState([]byte("garbage")); err == nil {
		t.Fatal("garbage decoded as ship state")
	}
}
