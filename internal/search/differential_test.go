package search

import (
	"fmt"
	"math/rand"
	"net/netip"
	"reflect"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"censysmap/internal/entity"
)

// This file cross-checks the planner/postings engine against a naive
// reference evaluator: scan every document, apply the parsed tree as a
// per-document predicate (exactly the seed engine's semantics), and sort
// the matching IDs. Any divergence — operator rewrite, selectivity
// reordering, cache staleness, partition merge — fails the comparison.

// refDoc is the reference evaluator's view of one document, built through
// the same Flatten/Tokenize schema the index uses.
type refDoc struct {
	id      string
	fields  map[string][]string
	tokens  map[string]map[string]bool
	numbers map[string][]int64
}

func refDocFrom(h *entity.Host) *refDoc {
	d := &refDoc{
		id:      h.ID(),
		fields:  Flatten(h),
		tokens:  make(map[string]map[string]bool),
		numbers: make(map[string][]int64),
	}
	for field, values := range d.fields {
		set := make(map[string]bool)
		for _, v := range values {
			if n, err := strconv.ParseInt(v, 10, 64); err == nil {
				d.numbers[field] = append(d.numbers[field], n)
			}
			for _, tok := range Tokenize(v) {
				set[tok] = true
			}
		}
		d.tokens[field] = set
	}
	return d
}

func refMatch(d *refDoc, n queryNode) bool {
	switch t := n.(type) {
	case andNode:
		for _, c := range t.children {
			if !refMatch(d, c) {
				return false
			}
		}
		return true
	case orNode:
		for _, c := range t.children {
			if refMatch(d, c) {
				return true
			}
		}
		return false
	case notNode:
		return !refMatch(d, t.child)
	case termNode:
		return refTerm(d, t)
	default:
		return false
	}
}

func refTerm(d *refDoc, t termNode) bool {
	fieldsOf := func() []string {
		if t.field != "" {
			return []string{t.field}
		}
		return textFieldList
	}
	switch {
	case t.isRange:
		for _, n := range d.numbers[t.field] {
			if n >= t.lo && n <= t.hi {
				return true
			}
		}
		return false
	case t.prefix:
		prefix := strings.ToLower(t.value)
		for _, f := range fieldsOf() {
			for tok := range d.tokens[f] {
				if strings.HasPrefix(tok, prefix) {
					return true
				}
			}
		}
		return false
	case t.phrase:
		phrase := strings.ToLower(t.value)
		for _, f := range fieldsOf() {
			for _, v := range d.fields[f] {
				if strings.Contains(strings.ToLower(v), phrase) {
					return true
				}
			}
		}
		return false
	default:
		token := strings.ToLower(t.value)
		for _, f := range fieldsOf() {
			if d.tokens[f][token] {
				return true
			}
		}
		return false
	}
}

// refSearch is the oracle: evaluate the parsed tree over every doc.
func refSearch(docs []*refDoc, q *Query) []string {
	out := []string{}
	for _, d := range docs {
		if refMatch(d, q.root) {
			out = append(out, d.id)
		}
	}
	sort.Strings(out)
	return out
}

// genHost builds a deterministic pseudo-random host.
func genHost(rng *rand.Rand, i int) *entity.Host {
	countries := []string{"US", "CN", "DE", "FR", "JP", "BR"}
	protos := []string{"HTTP", "SSH", "FTP", "MODBUS", "RDP", "DNS"}
	titles := []string{"Welcome to nginx!", "MOVEit Transfer", "Login", "Router Admin", "Console 7", ""}
	h := entity.NewHost(netip.AddrFrom4([4]byte{10, byte(i >> 16), byte(i >> 8), byte(i)}))
	h.Location = &entity.Location{Country: countries[rng.Intn(len(countries))]}
	h.AS = &entity.AS{Number: uint32(64000 + rng.Intn(32)), Org: fmt.Sprintf("Org %d", rng.Intn(8))}
	if rng.Intn(4) == 0 {
		h.Labels = []string{"ics"}
	}
	nsvc := 1 + rng.Intn(3)
	for s := 0; s < nsvc; s++ {
		svc := &entity.Service{
			Port:      uint16(1 + rng.Intn(9000)),
			Transport: entity.TCP,
			Protocol:  protos[rng.Intn(len(protos))],
			Verified:  true,
			Banner:    fmt.Sprintf("banner item %d", rng.Intn(40)),
		}
		if title := titles[rng.Intn(len(titles))]; title != "" {
			svc.Attributes = map[string]string{"http.title": title}
		}
		if rng.Intn(3) == 0 {
			svc.TLS = true
			svc.CertSHA256 = fmt.Sprintf("%08x", rng.Uint32())
		}
		h.SetService(svc)
	}
	return h
}

// genQuery builds a random syntactically valid query.
func genQuery(rng *rand.Rand, depth int) string {
	terms := []string{
		`services.protocol: HTTP`, `services.protocol: modbus`,
		`location.country: US`, `location.country: DE`,
		`labels: ics`, `services.tls: true`,
		`as.number: 64007`, `ip: 10.0.0.3`,
		`services.port: [1 TO 500]`, `services.port: [4000 TO 9000]`,
		`as.number: [64000 TO 64010]`, `services.port: [200 TO 100]`,
		`"MOVEit Transfer"`, `services.http.title: "Console 7"`,
		`services.http.title: "router"`, `banner`, `nginx*`,
		`services.banner: "banner item 3"`, `services.http.server: Micro*`,
		`Router*`, `services.protocol: R*`, `org`, `as.org: "Org 5"`,
	}
	if depth <= 0 || rng.Intn(3) == 0 {
		t := terms[rng.Intn(len(terms))]
		if rng.Intn(5) == 0 {
			return "not " + t
		}
		return t
	}
	left, right := genQuery(rng, depth-1), genQuery(rng, depth-1)
	switch rng.Intn(4) {
	case 0:
		return fmt.Sprintf("(%s) and (%s)", left, right)
	case 1:
		return fmt.Sprintf("(%s) or (%s)", left, right)
	case 2:
		return fmt.Sprintf("not (%s)", left)
	default:
		return fmt.Sprintf("(%s) and not (%s)", left, right)
	}
}

// checkQuery asserts the engine and the oracle agree on one query, on both
// the cold and the cached path.
func checkQuery(t *testing.T, ix *Index, docs []*refDoc, query string) {
	t.Helper()
	q, err := ParseQuery(query)
	if err != nil {
		t.Fatalf("ParseQuery(%q): %v", query, err)
	}
	want := refSearch(docs, q)
	got := ix.Execute(q)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("query %q:\n engine %v\n oracle %v\n (plan %s)", query, got, want, q.key)
	}
	if again := ix.Execute(q); !reflect.DeepEqual(again, want) {
		t.Fatalf("query %q: cached re-run diverged: %v vs %v", query, again, want)
	}
}

// TestDifferentialGenerated drives generated indexes through generated and
// hand-picked queries across partition counts, including the NOT/range/
// prefix/phrase edge cases, with mutation (remove + reindex) in between.
func TestDifferentialGenerated(t *testing.T) {
	edgeQueries := []string{
		`not services.protocol: HTTP`,
		`not not services.protocol: HTTP`,
		`not services.protocol: HTTP and not services.protocol: SSH`,
		`not (services.protocol: HTTP or location.country: US)`,
		`not services.protocol: HTTP or not location.country: US`,
		`services.port: [0 TO 0]`,
		`services.port: [-5 TO 5]`,
		`services.port: [500 TO 100]`, // inverted bounds: matches nothing
		`services.port: [1 TO 65535] and not services.tls: true`,
		`nosuchfield: x`, `nosuchfield: [1 TO 2]`, `nosuchfield: x*`,
		`services.http.title: ""`, // empty phrase: any doc with the field
		`zzz*`,                    // prefix matching nothing
		`services.protocol: HTTP and services.protocol: HTTP`, // dupe conjunct
		`location.country: US or location.country: US`,        // dupe disjunct
		`(a or not a)`, // tautology over a term matching nothing
	}
	for _, cfg := range []struct{ seed, docs, parts int }{
		{1, 30, 1}, {2, 30, 4}, {3, 120, 1}, {4, 120, 8}, {5, 400, 4},
	} {
		t.Run(fmt.Sprintf("seed%d_docs%d_parts%d", cfg.seed, cfg.docs, cfg.parts), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(cfg.seed)))
			ix := NewPartitioned(cfg.parts)
			hosts := make([]*entity.Host, cfg.docs)
			for i := range hosts {
				hosts[i] = genHost(rng, i)
				ix.Upsert(hosts[i])
			}
			// Mutate: remove a third, reindex (changed) another third —
			// postings teardown and docID reuse must stay exact.
			docs := make(map[string]*refDoc)
			for i, h := range hosts {
				switch i % 3 {
				case 0:
					ix.Remove(h.ID())
				case 1:
					h2 := genHost(rng, i)
					// Same address, fresh state: a reindex.
					h2.IP = h.IP
					ix.Upsert(h2)
					docs[h2.ID()] = refDocFrom(h2)
				default:
					docs[h.ID()] = refDocFrom(h)
				}
			}
			var refDocs []*refDoc
			for _, d := range docs {
				refDocs = append(refDocs, d)
			}
			for _, q := range edgeQueries {
				checkQuery(t, ix, refDocs, q)
			}
			for i := 0; i < 120; i++ {
				checkQuery(t, ix, refDocs, genQuery(rng, 3))
			}
			// The same queries with the cache off must also agree.
			ix.SetQueryCache(false)
			rng2 := rand.New(rand.NewSource(int64(cfg.seed) + 1000))
			for i := 0; i < 40; i++ {
				checkQuery(t, ix, refDocs, genQuery(rng2, 3))
			}
		})
	}
}

// TestDifferentialCacheInvalidation interleaves queries and writes: a cached
// result must never survive a mutation of its partition.
func TestDifferentialCacheInvalidation(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	ix := NewPartitioned(4)
	docs := make(map[string]*refDoc)
	queries := []string{
		`services.protocol: HTTP`,
		`services.protocol: HTTP and not services.tls: true`,
		`services.port: [1 TO 4000]`,
		`not location.country: US`,
	}
	for i := 0; i < 60; i++ {
		h := genHost(rng, i)
		ix.Upsert(h)
		docs[h.ID()] = refDocFrom(h)
		if i%7 == 3 {
			// Remove a random earlier host.
			var ids []string
			for id := range docs {
				ids = append(ids, id)
			}
			sort.Strings(ids)
			victim := ids[rng.Intn(len(ids))]
			ix.Remove(victim)
			delete(docs, victim)
		}
		var refDocs []*refDoc
		for _, d := range docs {
			refDocs = append(refDocs, d)
		}
		checkQuery(t, ix, refDocs, queries[i%len(queries)])
	}
	if st := ix.Stats(); st.Hits == 0 {
		t.Fatalf("expected some cache hits, stats %+v", st)
	}
}

// fuzzCorpus is the fixed differential corpus for FuzzSearchDifferential:
// one serial and one partitioned index over identical documents, plus the
// reference docs.
var fuzzCorpus struct {
	once sync.Once
	ix1  *Index
	ix4  *Index
	docs []*refDoc
}

func fuzzIndexes() (*Index, *Index, []*refDoc) {
	c := &fuzzCorpus
	c.once.Do(func() {
		rng := rand.New(rand.NewSource(7))
		c.ix1, c.ix4 = NewIndex(), NewPartitioned(4)
		for i := 0; i < 48; i++ {
			h := genHost(rng, i)
			c.ix1.Upsert(h)
			c.ix4.Upsert(h)
			c.docs = append(c.docs, refDocFrom(h))
		}
	})
	return c.ix1, c.ix4, c.docs
}

// FuzzSearchDifferential: any query the parser accepts must produce
// identical sorted IDs from the naive reference evaluator, the serial
// engine, and the 4-way partitioned engine.
func FuzzSearchDifferential(f *testing.F) {
	for _, seed := range []string{
		`services.protocol: HTTP`,
		`location.country: US and services.protocol: HTTP`,
		`location.country: US AND NOT services.protocol: MODBUS`,
		`not not labels: ics`,
		`not services.tls: true and not services.protocol: SSH`,
		`(location.country: US or location.country: DE) and not services.tls: true`,
		`services.port: [1 TO 500]`,
		`services.port: [500 TO 1]`,
		`"MOVEit Transfer"`,
		`services.http.title: "Console 7"`,
		`nginx* or Router*`,
		`banner and not nginx*`,
		`a or not a`,
		`ip: 10.0.0.3`,
		`x: ""`,
		`*`,
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := ParseQuery(src)
		if err != nil {
			return
		}
		ix1, ix4, docs := fuzzIndexes()
		want := refSearch(docs, q)
		if got := ix1.Execute(q); !reflect.DeepEqual(got, want) {
			t.Fatalf("serial engine diverged on %q (plan %s):\n engine %v\n oracle %v", src, q.key, got, want)
		}
		if got := ix4.Execute(q); !reflect.DeepEqual(got, want) {
			t.Fatalf("partitioned engine diverged on %q (plan %s):\n engine %v\n oracle %v", src, q.key, got, want)
		}
	})
}
