package search

import (
	"fmt"
	"net/netip"
	"sync"
	"testing"

	"censysmap/internal/entity"
)

func populateIndex(n int) *Index {
	ix := NewIndex()
	countries := []string{"US", "CN", "DE", "FR", "JP"}
	protos := []string{"HTTP", "SSH", "FTP", "MODBUS"}
	for i := 0; i < n; i++ {
		h := entity.NewHost(netip.AddrFrom4([4]byte{10, byte(i >> 16), byte(i >> 8), byte(i)}))
		h.Location = &entity.Location{Country: countries[i%len(countries)]}
		h.AS = &entity.AS{Number: uint32(64000 + i%500), Org: fmt.Sprintf("Org %d", i%100)}
		h.SetService(&entity.Service{
			Port: uint16(1 + i%65535), Transport: entity.TCP,
			Protocol: protos[i%len(protos)], Verified: true,
			Banner:     fmt.Sprintf("banner item %d", i),
			Attributes: map[string]string{"http.title": fmt.Sprintf("Console %d", i%50)},
		})
		ix.Upsert(h)
	}
	return ix
}

func BenchmarkIndexUpsert(b *testing.B) {
	ix := NewIndex()
	h := entity.NewHost(netip.MustParseAddr("10.0.0.1"))
	h.SetService(&entity.Service{Port: 80, Transport: entity.TCP, Protocol: "HTTP",
		Banner: "HTTP/1.1 200 OK", Attributes: map[string]string{"http.title": "Welcome"}})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ix.Upsert(h)
	}
}

func BenchmarkSearchTermQuery(b *testing.B) {
	ix := populateIndex(5000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ix.Search(`services.protocol: MODBUS and location.country: US`); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSearchPhraseQuery(b *testing.B) {
	ix := populateIndex(5000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ix.Search(`services.http.title: "Console 7"`); err != nil {
			b.Fatal(err)
		}
	}
}

func TestIndexConcurrentAccess(t *testing.T) {
	ix := populateIndex(500)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(2)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				h := entity.NewHost(netip.AddrFrom4([4]byte{172, 16, byte(g), byte(i)}))
				h.SetService(&entity.Service{Port: 80, Transport: entity.TCP, Protocol: "HTTP"})
				ix.Upsert(h)
			}
		}(g)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if _, err := ix.Search(`services.protocol: HTTP`); err != nil {
					t.Error(err)
				}
			}
		}()
	}
	wg.Wait()
	if n, _ := ix.Count(`services.protocol: HTTP`); n == 0 {
		t.Fatal("concurrent writes lost")
	}
}
