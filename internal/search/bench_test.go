package search

import (
	"fmt"
	"net/netip"
	"sync"
	"testing"

	"censysmap/internal/entity"
)

func populateIndex(n int) *Index { return populatePartitioned(n, 1) }

// populatePartitioned builds a deterministic n-doc index striped over parts
// partitions. Field cardinalities are chosen so queries span the selectivity
// spectrum: as.number matches ~n/500 docs, location.country ~n/5,
// services.protocol ~n/4.
func populatePartitioned(n, parts int) *Index {
	ix := NewPartitioned(parts)
	countries := []string{"US", "CN", "DE", "FR", "JP"}
	protos := []string{"HTTP", "SSH", "FTP", "MODBUS"}
	for i := 0; i < n; i++ {
		h := entity.NewHost(netip.AddrFrom4([4]byte{10, byte(i >> 16), byte(i >> 8), byte(i)}))
		h.Location = &entity.Location{Country: countries[i%len(countries)]}
		h.AS = &entity.AS{Number: uint32(64000 + i%500), Org: fmt.Sprintf("Org %d", i%100)}
		h.SetService(&entity.Service{
			Port: uint16(1 + i%65535), Transport: entity.TCP,
			Protocol: protos[i%len(protos)], Verified: true,
			Banner:     fmt.Sprintf("banner item %d", i),
			Attributes: map[string]string{"http.title": fmt.Sprintf("Console %d", i%50)},
		})
		ix.Upsert(h)
	}
	return ix
}

// disableCache turns the query cache off when the engine has one, so raw
// evaluation cost is measured rather than a cache hit. It is a no-op on
// engines without a cache (the seed engine), keeping seed-vs-new benchmark
// runs directly comparable.
func disableCache(ix *Index) {
	type cacheToggler interface{ SetQueryCache(bool) }
	if t, ok := any(ix).(cacheToggler); ok {
		t.SetQueryCache(false)
	}
}

// The 50k-doc corpora are shared across benchmarks: building them dominates
// any single bench's setup time.
var (
	bench50kOnce sync.Once
	bench50k     *Index // 1 partition
	bench50k8    *Index // 8 partitions
)

func bench50kIndexes() (*Index, *Index) {
	bench50kOnce.Do(func() {
		bench50k = populatePartitioned(50000, 1)
		bench50k8 = populatePartitioned(50000, 8)
	})
	return bench50k, bench50k8
}

func runQueryBench(b *testing.B, ix *Index, query string) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ix.Search(query); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIndexUpsert(b *testing.B) {
	ix := NewIndex()
	h := entity.NewHost(netip.MustParseAddr("10.0.0.1"))
	h.SetService(&entity.Service{Port: 80, Transport: entity.TCP, Protocol: "HTTP",
		Banner: "HTTP/1.1 200 OK", Attributes: map[string]string{"http.title": "Welcome"}})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ix.Upsert(h)
	}
}

func BenchmarkSearchTermQuery(b *testing.B) {
	ix := populateIndex(5000)
	disableCache(ix)
	runQueryBench(b, ix, `services.protocol: MODBUS and location.country: US`)
}

func BenchmarkSearchPhraseQuery(b *testing.B) {
	ix := populateIndex(5000)
	disableCache(ix)
	runQueryBench(b, ix, `services.http.title: "Console 7"`)
}

// High- vs low-selectivity AND ordering: both queries name the same three
// terms; one leads with the ~100-doc term, the other with the ~10k-doc term.
// A planner that orders conjuncts by estimated selectivity makes the two
// equally cheap; a left-to-right evaluator pays for the bad ordering.
func BenchmarkSearchANDHighSelectivityFirst(b *testing.B) {
	ix, _ := bench50kIndexes()
	disableCache(ix)
	runQueryBench(b, ix, `as.number: 64123 and services.protocol: HTTP and location.country: US`)
}

func BenchmarkSearchANDLowSelectivityFirst(b *testing.B) {
	ix, _ := bench50kIndexes()
	disableCache(ix)
	runQueryBench(b, ix, `location.country: US and services.protocol: HTTP and as.number: 64123`)
}

// NOT-heavy: two negated conjuncts. The seed engine materializes the full
// doc set once per NOT; a difference-rewriting planner subtracts posting
// lists from the positive term instead.
func BenchmarkSearchNotHeavy(b *testing.B) {
	ix, _ := bench50kIndexes()
	disableCache(ix)
	runQueryBench(b, ix, `location.country: US and not services.protocol: HTTP and not services.protocol: SSH`)
}

// Numeric range over 50k docs: full column scan (seed) vs two binary
// searches over a sorted (value, doc) column.
func BenchmarkSearchRange(b *testing.B) {
	ix, _ := bench50kIndexes()
	disableCache(ix)
	runQueryBench(b, ix, `services.port: [10000 TO 10200]`)
}

// Repeated identical query with the cache left on — the dashboard pattern.
// On the seed engine this is indistinguishable from raw evaluation.
func BenchmarkSearchCachedRepeat(b *testing.B) {
	ix, _ := bench50kIndexes()
	runQueryBench(b, ix, `location.country: US and services.protocol: HTTP and not services.tls: true`)
}

// Parallel execution across 8 partitions at 50k docs (cache off). On
// multi-core hardware the partitions evaluate concurrently; on any hardware
// the per-partition result merge must stay bit-identical to 1 partition.
func BenchmarkSearchParallel8Part(b *testing.B) {
	_, ix8 := bench50kIndexes()
	disableCache(ix8)
	runQueryBench(b, ix8, `services.protocol: MODBUS and location.country: US and not services.tls: true`)
}

func TestIndexConcurrentAccess(t *testing.T) {
	ix := populateIndex(500)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(2)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				h := entity.NewHost(netip.AddrFrom4([4]byte{172, 16, byte(g), byte(i)}))
				h.SetService(&entity.Service{Port: 80, Transport: entity.TCP, Protocol: "HTTP"})
				ix.Upsert(h)
			}
		}(g)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if _, err := ix.Search(`services.protocol: HTTP`); err != nil {
					t.Error(err)
				}
			}
		}()
	}
	wg.Wait()
	if n, _ := ix.Count(`services.protocol: HTTP`); n == 0 {
		t.Fatal("concurrent writes lost")
	}
}
