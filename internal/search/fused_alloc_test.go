//go:build !race

package search

import "testing"

// TestFusedAndBoundedAllocs pins the allocation budget of the fused
// conjunction evaluator: a 3-term AND over term postings must allocate only
// its output slice — the include/exclude gathers, cursors, and ordering all
// live on the stack. (Race instrumentation changes allocation counts, hence
// the build tag; plain `make test` enforces this.)
func TestFusedAndBoundedAllocs(t *testing.T) {
	ix := populatePartitioned(20000, 1)
	q, err := ParseQuery(`as.number: 64120 and services.protocol: HTTP and location.country: US`)
	if err != nil {
		t.Fatal(err)
	}
	qn, err := ParseQuery(`as.number: 64120 and services.protocol: HTTP and not location.country: CN`)
	if err != nil {
		t.Fatal(err)
	}
	p := ix.parts[0]
	p.mu.RLock()
	defer p.mu.RUnlock()
	for _, tc := range []struct {
		name string
		q    *Query
	}{
		{"and3", q}, {"and2not1", qn},
	} {
		got := -1
		allocs := testing.AllocsPerRun(50, func() {
			got = len(p.evalPlan(tc.q.plan))
		})
		if got <= 0 {
			t.Fatalf("%s: expected matches, got %d", tc.name, got)
		}
		if allocs > 1 {
			t.Fatalf("%s: evalPlan allocated %.1f objects per run, budget is 1 (the output)", tc.name, allocs)
		}
	}
}
