package search

import (
	"reflect"
	"testing"
)

// buildPartitioned mirrors buildIndex over a 4-way partitioned index.
func buildPartitioned(t *testing.T) *Index {
	t.Helper()
	ix := NewPartitioned(4)
	ix.Upsert(makeHost("10.0.0.1", "US",
		svc(80, "HTTP", map[string]string{"http.title": "Welcome to nginx!", "http.server": "nginx/1.24.0"}),
		svc(22, "SSH", nil)))
	ix.Upsert(makeHost("10.0.0.2", "DE",
		svc(443, "HTTP", map[string]string{"http.title": "MOVEit Transfer", "http.server": "Microsoft-IIS/10.0"})))
	h3 := makeHost("10.0.0.3", "US", svc(502, "MODBUS", map[string]string{"modbus.vendor": "Schneider Electric"}))
	h3.Labels = []string{"ics", "plc"}
	ix.Upsert(h3)
	h4 := makeHost("10.0.0.4", "CN", svc(8443, "HTTP", map[string]string{"http.title": "Login"}))
	h4.Services["8443/tcp"].TLS = true
	h4.Services["8443/tcp"].CertSHA256 = "aabbcc"
	ix.Upsert(h4)
	return ix
}

// A partitioned index must answer every query exactly like the single-lock
// index: the merged result set over partitions is the global result set.
func TestPartitionedIndexMatchesSerial(t *testing.T) {
	serial := buildIndex(t)
	parted := buildPartitioned(t)
	if got := parted.Partitions(); got != 4 {
		t.Fatalf("Partitions() = %d, want 4", got)
	}
	if serial.Len() != parted.Len() {
		t.Fatalf("Len: serial %d vs partitioned %d", serial.Len(), parted.Len())
	}
	queries := []string{
		`services.protocol: HTTP`,
		`location.country: US and services.protocol: HTTP`,
		`services.port: 22 or services.port: 443`,
		`not services.protocol: MODBUS`,
		`services.http.title: "MOVEit Transfer"`,
		`services.tls: true`,
		`labels: ics`,
		`services.port: [400 to 600]`,
		`services.http.server: nginx*`,
	}
	for _, q := range queries {
		s := ids(t, serial, q)
		p := ids(t, parted, q)
		if !reflect.DeepEqual(s, p) {
			t.Errorf("query %q: serial %v vs partitioned %v", q, s, p)
		}
	}
}

func TestPartitionedRemove(t *testing.T) {
	ix := buildPartitioned(t)
	ix.Remove("10.0.0.3")
	if h := ix.Host("10.0.0.3"); h != nil {
		t.Fatal("removed host still resolvable")
	}
	wantIDs(t, ids(t, ix, `services.protocol: MODBUS`))
	wantIDs(t, ids(t, ix, `location.country: US`), "10.0.0.1")
}
