package search

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// TestFusedAndDifferential holds the fused AND/AND-NOT evaluator
// bit-identical to the legacy pairwise evaluator over hand-picked conjunction
// shapes and generated query trees, across partition counts. The cache is off
// so both runs actually evaluate.
func TestFusedAndDifferential(t *testing.T) {
	defer SetFusedAnd(true)
	shapes := []string{
		`services.protocol: HTTP`,
		`services.protocol: HTTP and location.country: US`,
		`services.protocol: HTTP and location.country: US and services.tls: true`,
		`services.protocol: HTTP and services.protocol: HTTP`,
		`location.country: US and not services.protocol: HTTP`,
		`not services.protocol: HTTP and not services.protocol: SSH`,
		`not services.protocol: HTTP`,
		`services.port: [1 TO 4000] and services.protocol: SSH and not services.tls: true`,
		`nosuchfield: x and services.protocol: HTTP`,
		`services.protocol: HTTP and nosuchfield: x`,
		`(services.protocol: HTTP or services.protocol: SSH) and location.country: US`,
		`services.protocol: HTTP and (not location.country: US) and services.port: [0 TO 65535]`,
		`a and b and c and d and e and f and g and h and i and j`, // >8 conjuncts: spills the stack buffers
	}
	for _, cfg := range []struct{ seed, docs, parts int }{
		{11, 60, 1}, {12, 250, 4}, {13, 400, 8},
	} {
		t.Run(fmt.Sprintf("seed%d_docs%d_parts%d", cfg.seed, cfg.docs, cfg.parts), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(cfg.seed)))
			ix := NewPartitioned(cfg.parts)
			for i := 0; i < cfg.docs; i++ {
				ix.Upsert(genHost(rng, i))
			}
			ix.SetQueryCache(false)
			queries := append([]string(nil), shapes...)
			for i := 0; i < 200; i++ {
				queries = append(queries, genQuery(rng, 3))
			}
			for _, qs := range queries {
				q, err := ParseQuery(qs)
				if err != nil {
					t.Fatalf("ParseQuery(%q): %v", qs, err)
				}
				SetFusedAnd(true)
				fused := ix.Execute(q)
				SetFusedAnd(false)
				legacy := ix.Execute(q)
				if !reflect.DeepEqual(fused, legacy) {
					t.Fatalf("query %q diverged:\n fused  %v\n legacy %v\n (plan %s)",
						qs, fused, legacy, q.key)
				}
			}
		})
	}
}
