package search

import "sort"

// This file holds the compressed-postings primitives of the read path: every
// posting list is a sorted []uint32 of partition-local document IDs, so the
// boolean operators are linear merges over sorted slices instead of hash-map
// churn, and numeric fields are sorted (value, doc) columns so range lookups
// are two binary searches. See DESIGN.md, "Read path".

// insertU32 inserts v into sorted slice s, keeping it sorted and deduped.
func insertU32(s []uint32, v uint32) []uint32 {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= v })
	if i < len(s) && s[i] == v {
		return s
	}
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

// removeU32 removes v from sorted slice s if present.
func removeU32(s []uint32, v uint32) []uint32 {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= v })
	if i >= len(s) || s[i] != v {
		return s
	}
	return append(s[:i], s[i+1:]...)
}

// intersectU32 returns a ∩ b as a new sorted slice. Inputs are not mutated.
func intersectU32(a, b []uint32) []uint32 {
	if len(a) > len(b) {
		a, b = b, a
	}
	if len(a) == 0 {
		return nil
	}
	out := make([]uint32, 0, len(a))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// unionU32 returns a ∪ b as a new sorted, deduped slice.
func unionU32(a, b []uint32) []uint32 {
	if len(a) == 0 {
		return append([]uint32(nil), b...)
	}
	if len(b) == 0 {
		return append([]uint32(nil), a...)
	}
	out := make([]uint32, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// diffU32 returns a \ b as a new sorted slice.
func diffU32(a, b []uint32) []uint32 {
	if len(a) == 0 {
		return nil
	}
	if len(b) == 0 {
		return append([]uint32(nil), a...)
	}
	out := make([]uint32, 0, len(a))
	i, j := 0, 0
	for i < len(a) {
		for j < len(b) && b[j] < a[i] {
			j++
		}
		if j >= len(b) || b[j] != a[i] {
			out = append(out, a[i])
		}
		i++
	}
	return out
}

// numEntry is one cell of a numeric column: a field value on a document.
type numEntry struct {
	val int64
	doc uint32
}

// numCol is a per-field numeric column kept sorted by (value, doc). A
// document with k numeric values for the field has k entries.
type numCol []numEntry

func (c numCol) search(e numEntry) int {
	return sort.Search(len(c), func(i int) bool {
		if c[i].val != e.val {
			return c[i].val > e.val
		}
		return c[i].doc >= e.doc
	})
}

// insert adds an entry, keeping the column sorted; duplicate (value, doc)
// entries are collapsed (multi-valued fields are deduped at document build).
func (c numCol) insert(e numEntry) numCol {
	i := c.search(e)
	if i < len(c) && c[i] == e {
		return c
	}
	c = append(c, numEntry{})
	copy(c[i+1:], c[i:])
	c[i] = e
	return c
}

// remove deletes an entry if present.
func (c numCol) remove(e numEntry) numCol {
	i := c.search(e)
	if i >= len(c) || c[i] != e {
		return c
	}
	return append(c[:i], c[i+1:]...)
}

// bounds returns the half-open entry range [i, j) with value in [lo, hi].
func (c numCol) bounds(lo, hi int64) (int, int) {
	i := sort.Search(len(c), func(i int) bool { return c[i].val >= lo })
	j := sort.Search(len(c), func(i int) bool { return c[i].val > hi })
	return i, j
}

// rangeDocs returns the sorted, deduped doc list with a value in [lo, hi] —
// two binary searches plus a walk over only the matching entries.
func (c numCol) rangeDocs(lo, hi int64) []uint32 {
	i, j := c.bounds(lo, hi)
	if i >= j {
		return nil
	}
	out := make([]uint32, 0, j-i)
	for ; i < j; i++ {
		out = append(out, c[i].doc)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	// Dedupe in place (a doc can hold several in-range values).
	w := 0
	for r := 0; r < len(out); r++ {
		if r == 0 || out[r] != out[r-1] {
			out[w] = out[r]
			w++
		}
	}
	return out[:w]
}

// mergeSortedStrings k-way merges pre-sorted string slices into one sorted
// slice. The inputs are per-partition results over disjoint document sets,
// so no dedupe is needed; k is the partition count (small), so a linear
// min-head scan beats a heap.
func mergeSortedStrings(lists [][]string) []string {
	total := 0
	nonEmpty := 0
	last := -1
	for i, l := range lists {
		total += len(l)
		if len(l) > 0 {
			nonEmpty++
			last = i
		}
	}
	if total == 0 {
		return []string{}
	}
	if nonEmpty == 1 {
		return append([]string(nil), lists[last]...)
	}
	out := make([]string, 0, total)
	heads := make([]int, len(lists))
	for len(out) < total {
		min := -1
		for i, l := range lists {
			if heads[i] >= len(l) {
				continue
			}
			if min < 0 || l[heads[i]] < lists[min][heads[min]] {
				min = i
			}
		}
		out = append(out, lists[min][heads[min]])
		heads[min]++
	}
	return out
}
