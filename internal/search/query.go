package search

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// The query language is Lucene-like (paper §5.3):
//
//	services.service_name="MODBUS" and location.country="US"
//	services.port: [8000 TO 9000]
//	labels: ics and not services.tls: true
//	"MOVEit Transfer"            (bare phrase: full-text)
//	services.http.title: Router*  (prefix wildcard)
//
// Operators and/or/not are case-insensitive; adjacency implies AND; both
// `field: value` and `field="value"` forms are accepted.

// queryNode is an AST node.
type queryNode interface{ isNode() }

type andNode struct{ children []queryNode }
type orNode struct{ children []queryNode }
type notNode struct{ child queryNode }

// termNode is a single match primitive.
type termNode struct {
	field  string // empty for bare full-text terms
	value  string
	phrase bool // quoted: substring semantics
	prefix bool // trailing *: prefix semantics
	// numeric range [lo, hi]; active when isRange.
	isRange bool
	lo, hi  int64
}

func (andNode) isNode()  {}
func (orNode) isNode()   {}
func (notNode) isNode()  {}
func (termNode) isNode() {}

// Query is a compiled query: the parsed tree plus its normalized plan and
// the plan's canonical key (the query-cache key — see planner.go).
type Query struct {
	root queryNode
	src  string
	plan planNode
	key  string
}

// String returns the original query text.
func (q *Query) String() string { return q.src }

type qtoken struct {
	kind string // "lparen","rparen","and","or","not","term","field","range"
	term termNode
}

type qlexer struct {
	src string
	pos int
}

func (l *qlexer) peekByte() (byte, bool) {
	if l.pos >= len(l.src) {
		return 0, false
	}
	return l.src[l.pos], true
}

func (l *qlexer) skipSpace() {
	for l.pos < len(l.src) && unicode.IsSpace(rune(l.src[l.pos])) {
		l.pos++
	}
}

// readAtom reads a bare word (no spaces, parens, colons or quotes).
func (l *qlexer) readAtom() string {
	start := l.pos
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if unicode.IsSpace(rune(c)) || c == '(' || c == ')' || c == ':' || c == '"' || c == '=' || c == ']' {
			break
		}
		l.pos++
	}
	return l.src[start:l.pos]
}

func (l *qlexer) readQuoted() (string, error) {
	l.pos++ // opening quote
	var sb strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\\' && l.pos+1 < len(l.src) {
			l.pos++
			sb.WriteByte(l.src[l.pos])
			l.pos++
			continue
		}
		if c == '"' {
			l.pos++
			return sb.String(), nil
		}
		sb.WriteByte(c)
		l.pos++
	}
	return "", errors.New("search: unterminated quoted string")
}

// readRange parses `[lo TO hi]` after a field.
func (l *qlexer) readRange() (int64, int64, error) {
	l.pos++ // '['
	l.skipSpace()
	loStr := l.readAtom()
	l.skipSpace()
	to := l.readAtom()
	if !strings.EqualFold(to, "TO") {
		return 0, 0, fmt.Errorf("search: expected TO in range, got %q", to)
	}
	l.skipSpace()
	hiStr := l.readAtom()
	l.skipSpace()
	if c, ok := l.peekByte(); !ok || c != ']' {
		return 0, 0, errors.New("search: unterminated range")
	}
	l.pos++
	lo, err := strconv.ParseInt(loStr, 10, 64)
	if err != nil {
		return 0, 0, fmt.Errorf("search: bad range bound %q", loStr)
	}
	hi, err := strconv.ParseInt(hiStr, 10, 64)
	if err != nil {
		return 0, 0, fmt.Errorf("search: bad range bound %q", hiStr)
	}
	return lo, hi, nil
}

func (l *qlexer) tokens() ([]qtoken, error) {
	var toks []qtoken
	for {
		l.skipSpace()
		c, ok := l.peekByte()
		if !ok {
			return toks, nil
		}
		switch c {
		case '(':
			l.pos++
			toks = append(toks, qtoken{kind: "lparen"})
		case ')':
			l.pos++
			toks = append(toks, qtoken{kind: "rparen"})
		case '"':
			s, err := l.readQuoted()
			if err != nil {
				return nil, err
			}
			toks = append(toks, qtoken{kind: "term", term: termNode{value: s, phrase: true}})
		default:
			word := l.readAtom()
			if word == "" {
				return nil, fmt.Errorf("search: unexpected character %q", c)
			}
			switch strings.ToLower(word) {
			case "and":
				toks = append(toks, qtoken{kind: "and"})
				continue
			case "or":
				toks = append(toks, qtoken{kind: "or"})
				continue
			case "not":
				toks = append(toks, qtoken{kind: "not"})
				continue
			}
			// Field reference? (followed by ':' or '=')
			l.skipSpace()
			if c, ok := l.peekByte(); ok && (c == ':' || c == '=') {
				l.pos++
				l.skipSpace()
				term := termNode{field: word}
				c2, ok2 := l.peekByte()
				switch {
				case ok2 && c2 == '"':
					s, err := l.readQuoted()
					if err != nil {
						return nil, err
					}
					term.value = s
					term.phrase = true
				case ok2 && c2 == '[':
					lo, hi, err := l.readRange()
					if err != nil {
						return nil, err
					}
					term.isRange = true
					term.lo, term.hi = lo, hi
				default:
					v := l.readAtom()
					if v == "" {
						return nil, fmt.Errorf("search: field %q missing value", word)
					}
					term.value = v
				}
				if strings.HasSuffix(term.value, "*") && !term.isRange {
					term.prefix = true
					term.value = strings.TrimSuffix(term.value, "*")
				}
				toks = append(toks, qtoken{kind: "term", term: term})
				continue
			}
			// Bare full-text term.
			term := termNode{value: word}
			if strings.HasSuffix(word, "*") {
				term.prefix = true
				term.value = strings.TrimSuffix(word, "*")
			}
			toks = append(toks, qtoken{kind: "term", term: term})
		}
	}
}

type qparser struct {
	toks []qtoken
	pos  int
}

func (p *qparser) peek() (qtoken, bool) {
	if p.pos >= len(p.toks) {
		return qtoken{}, false
	}
	return p.toks[p.pos], true
}

// parseOr := parseAnd (OR parseAnd)*
func (p *qparser) parseOr() (queryNode, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	children := []queryNode{left}
	for {
		t, ok := p.peek()
		if !ok || t.kind != "or" {
			break
		}
		p.pos++
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		children = append(children, right)
	}
	if len(children) == 1 {
		return children[0], nil
	}
	return orNode{children: children}, nil
}

// parseAnd := parseUnary ((AND)? parseUnary)*  — adjacency implies AND.
func (p *qparser) parseAnd() (queryNode, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	children := []queryNode{left}
	for {
		t, ok := p.peek()
		if !ok {
			break
		}
		switch t.kind {
		case "and":
			p.pos++
		case "term", "not", "lparen":
			// implicit AND
		default:
			goto done
		}
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		children = append(children, right)
	}
done:
	if len(children) == 1 {
		return children[0], nil
	}
	return andNode{children: children}, nil
}

func (p *qparser) parseUnary() (queryNode, error) {
	t, ok := p.peek()
	if !ok {
		return nil, errors.New("search: unexpected end of query")
	}
	switch t.kind {
	case "not":
		p.pos++
		child, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return notNode{child: child}, nil
	case "lparen":
		p.pos++
		inner, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		t, ok := p.peek()
		if !ok || t.kind != "rparen" {
			return nil, errors.New("search: missing closing parenthesis")
		}
		p.pos++
		return inner, nil
	case "term":
		p.pos++
		return t.term, nil
	default:
		return nil, fmt.Errorf("search: unexpected %s", t.kind)
	}
}

// ParseQuery compiles a query string.
func ParseQuery(src string) (*Query, error) {
	if strings.TrimSpace(src) == "" {
		return nil, errors.New("search: empty query")
	}
	lex := &qlexer{src: src}
	toks, err := lex.tokens()
	if err != nil {
		return nil, err
	}
	p := &qparser{toks: toks}
	root, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if p.pos != len(p.toks) {
		return nil, errors.New("search: trailing tokens in query")
	}
	pl, key := plan(root)
	return &Query{root: root, src: src, plan: pl, key: key}, nil
}
