// Package search implements the interactive search interface of paper §5.3:
// an inverted index over the current state of every entity, queried with a
// Lucene-like language (field references, boolean operators, phrases,
// wildcards, numeric ranges). It stands in for the Elasticsearch tier.
//
// The execution engine is built around compressed integer postings: each
// partition keeps a dense docID dictionary (entity ID → uint32) and stores
// every posting list as a sorted []uint32, so boolean operators are linear
// merges; numeric fields are sorted (value, doc) columns, so range queries
// are two binary searches; and documents carry their lowercased raw values
// and token lists, so phrase matching and removal never re-lowercase or
// re-tokenize. A query planner (planner.go) and a generation-stamped query
// cache (cache.go) sit on top. See DESIGN.md, "Read path".
package search

import (
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"censysmap/internal/entity"
	"censysmap/internal/shard"
)

// Index is the searchable view of current entity state. It is maintained
// incrementally from write-side events (hosts are upserted as they change
// and removed as they disappear) and is safe for concurrent use.
//
// The index is partitioned: documents are striped over N independently
// locked partitions by a stable hash of the entity ID (the same routing the
// CQRS processor and journal use), so index maintenance driven from
// different processor shards does not serialize on one lock. Queries
// evaluate per partition and merge — every query operator is a per-document
// predicate, so a union of per-partition results is exactly the global
// result.
type Index struct {
	parts []*indexPart

	// cacheOff disables the per-partition query cache (benchmarks measuring
	// raw evaluation; differential tests exercising both paths).
	cacheOff atomic.Bool
	// hits/misses count query-cache outcomes across all partitions.
	hits, misses atomic.Uint64
	// planHits/planMisses count prepared-statement (plan) cache outcomes.
	planHits, planMisses atomic.Uint64

	// plans caches compiled queries by raw query text — the prepared-
	// statement cache. Compilation is pure (independent of index contents),
	// so entries never go stale and survive the result cache's generation
	// churn.
	planMu sync.Mutex
	plans  map[string]*Query
}

// indexPart is one independently locked stripe of the index.
type indexPart struct {
	mu sync.RWMutex

	// docID dictionary: entity ID ↔ dense partition-local uint32. Entries
	// are never recycled — a re-upserted entity keeps its local ID — so the
	// dictionary is bounded by the number of distinct entities ever seen.
	idOf    map[string]uint32
	byLocal []*document // local ID -> live document (nil when removed)

	// live is the sorted local-ID list of present documents: the base set
	// for NOT complements and the scan order for phrase evaluation.
	live []uint32

	docs map[string]*document
	// inverted maps field -> token -> sorted local-ID posting list.
	inverted map[string]map[string][]uint32
	// numeric maps field -> sorted (value, doc) column.
	numeric map[string]numCol

	// gen counts mutations; the query cache stamps entries with it. Bumped
	// under mu (write), read atomically by the cache probe.
	gen atomic.Uint64

	cacheMu sync.Mutex
	cache   map[string]cacheEntry
}

// document keeps the per-entity state needed for evaluation and teardown.
type document struct {
	id    string
	local uint32
	// fields holds raw (not tokenized) values per field, multi-valued.
	fields map[string][]string
	// lowered holds the lowercased raw values, precomputed at Upsert so
	// phrase queries stop re-lowercasing per evaluation.
	lowered map[string][]string
	// tokens holds the deduped token list actually posted per field, so
	// removal reverses the postings without re-running Tokenize.
	tokens map[string][]string
	// numbers holds the deduped numeric values entered per field column.
	numbers map[string][]int64
	host    *entity.Host
}

// NewIndex creates an empty single-partition index.
func NewIndex() *Index { return NewPartitioned(1) }

// NewPartitioned creates an empty index striped over n partitions
// (n <= 1 gives one partition).
func NewPartitioned(n int) *Index {
	if n < 1 {
		n = 1
	}
	ix := &Index{parts: make([]*indexPart, n), plans: make(map[string]*Query)}
	for i := range ix.parts {
		ix.parts[i] = &indexPart{
			idOf:     make(map[string]uint32),
			docs:     make(map[string]*document),
			inverted: make(map[string]map[string][]uint32),
			numeric:  make(map[string]numCol),
			cache:    make(map[string]cacheEntry),
		}
	}
	return ix
}

// Partitions reports the stripe count.
func (ix *Index) Partitions() int { return len(ix.parts) }

func (ix *Index) part(id string) *indexPart {
	return ix.parts[shard.Of(id, len(ix.parts))]
}

// textFields are searched by bare (fieldless) terms.
var textFields = map[string]bool{
	"services.banner": true, "services.http.title": true,
	"services.http.server": true, "as.org": true, "labels": true,
	"services.protocol": true, "software.product": true,
}

// textFieldList is textFields in sorted order, for deterministic iteration.
var textFieldList = func() []string {
	out := make([]string, 0, len(textFields))
	for f := range textFields {
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}()

// Tokenize lowercases and splits a value into index tokens; the full
// lowercased value is always included as a token for exact matches.
func Tokenize(v string) []string {
	lower := strings.ToLower(v)
	fields := strings.FieldsFunc(lower, func(r rune) bool {
		return !(r >= 'a' && r <= 'z' || r >= '0' && r <= '9' || r == '.' || r == '-' || r == '_' || r == '/')
	})
	seen := map[string]bool{lower: true}
	out := []string{lower}
	for _, f := range fields {
		if !seen[f] {
			seen[f] = true
			out = append(out, f)
		}
	}
	return out
}

// Flatten converts a host record into indexable (field, values) pairs —
// the document schema of the search tier.
func Flatten(h *entity.Host) map[string][]string {
	out := map[string][]string{
		"ip": {h.IP.String()},
	}
	add := func(field, v string) {
		if v != "" {
			out[field] = append(out[field], v)
		}
	}
	if h.Location != nil {
		add("location.country", h.Location.Country)
		add("location.city", h.Location.City)
	}
	if h.AS != nil {
		add("as.number", strconv.FormatUint(uint64(h.AS.Number), 10))
		add("as.name", h.AS.Name)
		add("as.org", h.AS.Org)
	}
	for _, l := range h.Labels {
		add("labels", l)
	}
	for _, v := range h.Vulns {
		add("vulns", v)
	}
	for _, sw := range h.Software {
		add("software.product", sw.Product)
		add("software.vendor", sw.Vendor)
		add("software.version", sw.Version)
		add("software.cpe", sw.CPE())
	}
	for _, svc := range h.ActiveServices() {
		add("services.port", strconv.Itoa(int(svc.Port)))
		add("services.transport", string(svc.Transport))
		add("services.protocol", svc.Protocol)
		add("services.service_name", svc.Protocol) // paper's query syntax alias
		add("services.banner", svc.Banner)
		if svc.TLS {
			add("services.tls", "true")
		}
		add("services.cert_sha256", svc.CertSHA256)
		for k, v := range svc.Attributes {
			add("services."+k, v)
		}
	}
	return out
}

// buildDocument precomputes everything a document needs for evaluation and
// teardown: lowercased values, deduped per-field tokens, deduped numbers.
func buildDocument(id string, h *entity.Host) *document {
	doc := &document{
		id:      id,
		fields:  Flatten(h),
		lowered: make(map[string][]string),
		tokens:  make(map[string][]string),
		numbers: make(map[string][]int64),
		host:    h.Clone(),
	}
	for field, values := range doc.fields {
		lows := make([]string, len(values))
		var toks []string
		seenTok := make(map[string]bool)
		for i, v := range values {
			lows[i] = strings.ToLower(v)
			if n, err := strconv.ParseInt(v, 10, 64); err == nil {
				doc.numbers[field] = appendUniqueInt64(doc.numbers[field], n)
			}
			for _, tok := range Tokenize(v) {
				if !seenTok[tok] {
					seenTok[tok] = true
					toks = append(toks, tok)
				}
			}
		}
		doc.lowered[field] = lows
		doc.tokens[field] = toks
	}
	return doc
}

func appendUniqueInt64(s []int64, v int64) []int64 {
	for _, x := range s {
		if x == v {
			return s
		}
	}
	return append(s, v)
}

// localID returns the partition-local dense ID for an entity, allocating on
// first sight. Caller holds the write lock.
func (p *indexPart) localID(id string) uint32 {
	if lid, ok := p.idOf[id]; ok {
		return lid
	}
	lid := uint32(len(p.byLocal))
	p.idOf[id] = lid
	p.byLocal = append(p.byLocal, nil)
	return lid
}

// Upsert indexes (or reindexes) a host's current state.
func (ix *Index) Upsert(h *entity.Host) {
	id := h.ID()
	p := ix.part(id)
	doc := buildDocument(id, h)
	p.mu.Lock()
	defer p.mu.Unlock()
	p.gen.Add(1)
	p.removeLocked(id)
	lid := p.localID(id)
	doc.local = lid
	for field, toks := range doc.tokens {
		byTok := p.inverted[field]
		if byTok == nil {
			byTok = make(map[string][]uint32)
			p.inverted[field] = byTok
		}
		for _, tok := range toks {
			byTok[tok] = insertU32(byTok[tok], lid)
		}
	}
	for field, ns := range doc.numbers {
		col := p.numeric[field]
		for _, n := range ns {
			col = col.insert(numEntry{val: n, doc: lid})
		}
		p.numeric[field] = col
	}
	p.live = insertU32(p.live, lid)
	p.byLocal[lid] = doc
	p.docs[id] = doc
}

// Remove deletes an entity from the index.
func (ix *Index) Remove(id string) {
	p := ix.part(id)
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.docs[id] == nil {
		return
	}
	p.gen.Add(1)
	p.removeLocked(id)
}

// removeLocked unposts a document using its stored token and number lists —
// no re-tokenization of field values. Caller holds the write lock.
func (p *indexPart) removeLocked(id string) {
	doc := p.docs[id]
	if doc == nil {
		return
	}
	lid := doc.local
	for field, toks := range doc.tokens {
		byTok := p.inverted[field]
		for _, tok := range toks {
			if list := removeU32(byTok[tok], lid); len(list) == 0 {
				delete(byTok, tok)
			} else {
				byTok[tok] = list
			}
		}
		if len(byTok) == 0 {
			delete(p.inverted, field)
		}
	}
	for field, ns := range doc.numbers {
		col := p.numeric[field]
		for _, n := range ns {
			col = col.remove(numEntry{val: n, doc: lid})
		}
		if len(col) == 0 {
			delete(p.numeric, field)
		} else {
			p.numeric[field] = col
		}
	}
	p.live = removeU32(p.live, lid)
	p.byLocal[lid] = nil
	delete(p.docs, id)
}

// DropPartition removes every document in partition i — the degraded-mode
// purge for a quarantined journal partition. The index and journal stripe by
// the same shard hash over the same partition count, so index partition i
// holds exactly the entities of journal partition i.
func (ix *Index) DropPartition(i int) {
	if i < 0 || i >= len(ix.parts) {
		return
	}
	p := ix.parts[i]
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.docs) == 0 {
		return
	}
	p.gen.Add(1)
	ids := make([]string, 0, len(p.docs))
	for id := range p.docs {
		ids = append(ids, id)
	}
	for _, id := range ids {
		p.removeLocked(id)
	}
}

// Len reports the number of indexed entities.
func (ix *Index) Len() int {
	n := 0
	for _, p := range ix.parts {
		p.mu.RLock()
		n += len(p.docs)
		p.mu.RUnlock()
	}
	return n
}

// Host returns the indexed snapshot of an entity.
func (ix *Index) Host(id string) *entity.Host {
	p := ix.part(id)
	p.mu.RLock()
	defer p.mu.RUnlock()
	if d := p.docs[id]; d != nil {
		return d.host.Clone()
	}
	return nil
}

// HostsByID clones the indexed host records for a sorted entity-ID list,
// batching the fetch per partition (one lock acquisition per partition, not
// one per host) and returning the hosts in ID order. It is the bounded-fetch
// companion to SearchHosts: callers that already hold the matching IDs — a
// limited search page, a cursor slice — materialize only the hosts they will
// serve instead of cloning the full result set.
func (ix *Index) HostsByID(ids []string) []*entity.Host {
	perPart := make([][]string, len(ix.parts))
	for _, id := range ids {
		p := shard.Of(id, len(ix.parts))
		perPart[p] = append(perPart[p], id)
	}
	hosts := make([][]*entity.Host, len(ix.parts))
	for i, p := range ix.parts {
		hosts[i] = p.hostsFor(perPart[i])
	}
	return mergeHostsByID(hosts)
}

// hostsFor clones the indexed hosts for a sorted per-partition ID list in
// one pass under a single read-lock acquisition (the batched fetch behind
// SearchHosts — one lock per partition, not one per result).
func (p *indexPart) hostsFor(ids []string) []*entity.Host {
	if len(ids) == 0 {
		return nil
	}
	out := make([]*entity.Host, 0, len(ids))
	p.mu.RLock()
	defer p.mu.RUnlock()
	for _, id := range ids {
		if d := p.docs[id]; d != nil {
			out = append(out, d.host.Clone())
		}
	}
	return out
}
