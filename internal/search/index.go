// Package search implements the interactive search interface of paper §5.3:
// an inverted index over the current state of every entity, queried with a
// Lucene-like language (field references, boolean operators, phrases,
// wildcards, numeric ranges). It stands in for the Elasticsearch tier.
package search

import (
	"sort"
	"strconv"
	"strings"
	"sync"

	"censysmap/internal/entity"
	"censysmap/internal/shard"
)

// Index is the searchable view of current entity state. It is maintained
// incrementally from write-side events (hosts are upserted as they change
// and removed as they disappear) and is safe for concurrent use.
//
// The index is partitioned: documents are striped over N independently
// locked partitions by a stable hash of the entity ID (the same routing the
// CQRS processor and journal use), so index maintenance driven from
// different processor shards does not serialize on one lock. Queries
// evaluate per partition and merge — every query operator is a per-document
// predicate, so a union of per-partition results is exactly the global
// result.
type Index struct {
	parts []*indexPart
}

// indexPart is one independently locked stripe of the index.
type indexPart struct {
	mu   sync.RWMutex
	docs map[string]*document
	// inverted maps field -> token -> docID set.
	inverted map[string]map[string]map[string]struct{}
}

// document keeps the raw values needed for phrase and range evaluation.
type document struct {
	id string
	// fields holds raw (not tokenized) values per field, multi-valued.
	fields map[string][]string
	// numbers holds numeric field values for range queries.
	numbers map[string][]int64
	host    *entity.Host
}

// NewIndex creates an empty single-partition index.
func NewIndex() *Index { return NewPartitioned(1) }

// NewPartitioned creates an empty index striped over n partitions
// (n <= 1 gives one partition).
func NewPartitioned(n int) *Index {
	if n < 1 {
		n = 1
	}
	ix := &Index{parts: make([]*indexPart, n)}
	for i := range ix.parts {
		ix.parts[i] = &indexPart{
			docs:     make(map[string]*document),
			inverted: make(map[string]map[string]map[string]struct{}),
		}
	}
	return ix
}

// Partitions reports the stripe count.
func (ix *Index) Partitions() int { return len(ix.parts) }

func (ix *Index) part(id string) *indexPart {
	return ix.parts[shard.Of(id, len(ix.parts))]
}

// textFields are searched by bare (fieldless) terms.
var textFields = map[string]bool{
	"services.banner": true, "services.http.title": true,
	"services.http.server": true, "as.org": true, "labels": true,
	"services.protocol": true, "software.product": true,
}

// Tokenize lowercases and splits a value into index tokens; the full
// lowercased value is always included as a token for exact matches.
func Tokenize(v string) []string {
	lower := strings.ToLower(v)
	fields := strings.FieldsFunc(lower, func(r rune) bool {
		return !(r >= 'a' && r <= 'z' || r >= '0' && r <= '9' || r == '.' || r == '-' || r == '_' || r == '/')
	})
	seen := map[string]bool{lower: true}
	out := []string{lower}
	for _, f := range fields {
		if !seen[f] {
			seen[f] = true
			out = append(out, f)
		}
	}
	return out
}

// Flatten converts a host record into indexable (field, values) pairs —
// the document schema of the search tier.
func Flatten(h *entity.Host) map[string][]string {
	out := map[string][]string{
		"ip": {h.IP.String()},
	}
	add := func(field, v string) {
		if v != "" {
			out[field] = append(out[field], v)
		}
	}
	if h.Location != nil {
		add("location.country", h.Location.Country)
		add("location.city", h.Location.City)
	}
	if h.AS != nil {
		add("as.number", strconv.FormatUint(uint64(h.AS.Number), 10))
		add("as.name", h.AS.Name)
		add("as.org", h.AS.Org)
	}
	for _, l := range h.Labels {
		add("labels", l)
	}
	for _, v := range h.Vulns {
		add("vulns", v)
	}
	for _, sw := range h.Software {
		add("software.product", sw.Product)
		add("software.vendor", sw.Vendor)
		add("software.version", sw.Version)
		add("software.cpe", sw.CPE())
	}
	for _, svc := range h.ActiveServices() {
		add("services.port", strconv.Itoa(int(svc.Port)))
		add("services.transport", string(svc.Transport))
		add("services.protocol", svc.Protocol)
		add("services.service_name", svc.Protocol) // paper's query syntax alias
		add("services.banner", svc.Banner)
		if svc.TLS {
			add("services.tls", "true")
		}
		add("services.cert_sha256", svc.CertSHA256)
		for k, v := range svc.Attributes {
			add("services."+k, v)
		}
	}
	return out
}

// Upsert indexes (or reindexes) a host's current state.
func (ix *Index) Upsert(h *entity.Host) {
	id := h.ID()
	p := ix.part(id)
	p.mu.Lock()
	defer p.mu.Unlock()
	p.removeLocked(id)
	doc := &document{id: id, fields: Flatten(h),
		numbers: make(map[string][]int64), host: h.Clone()}
	for field, values := range doc.fields {
		for _, v := range values {
			if n, err := strconv.ParseInt(v, 10, 64); err == nil {
				doc.numbers[field] = append(doc.numbers[field], n)
			}
			for _, tok := range Tokenize(v) {
				p.post(field, tok, id)
			}
		}
	}
	p.docs[id] = doc
}

func (p *indexPart) post(field, token, id string) {
	byTok := p.inverted[field]
	if byTok == nil {
		byTok = make(map[string]map[string]struct{})
		p.inverted[field] = byTok
	}
	set := byTok[token]
	if set == nil {
		set = make(map[string]struct{})
		byTok[token] = set
	}
	set[id] = struct{}{}
}

// Remove deletes an entity from the index.
func (ix *Index) Remove(id string) {
	p := ix.part(id)
	p.mu.Lock()
	defer p.mu.Unlock()
	p.removeLocked(id)
}

func (p *indexPart) removeLocked(id string) {
	doc := p.docs[id]
	if doc == nil {
		return
	}
	for field, values := range doc.fields {
		for _, v := range values {
			for _, tok := range Tokenize(v) {
				if set := p.inverted[field][tok]; set != nil {
					delete(set, id)
					if len(set) == 0 {
						delete(p.inverted[field], tok)
					}
				}
			}
		}
	}
	delete(p.docs, id)
}

// Len reports the number of indexed entities.
func (ix *Index) Len() int {
	n := 0
	for _, p := range ix.parts {
		p.mu.RLock()
		n += len(p.docs)
		p.mu.RUnlock()
	}
	return n
}

// Host returns the indexed snapshot of an entity.
func (ix *Index) Host(id string) *entity.Host {
	p := ix.part(id)
	p.mu.RLock()
	defer p.mu.RUnlock()
	if d := p.docs[id]; d != nil {
		return d.host.Clone()
	}
	return nil
}

// --- primitive query operations used by the executor ---
// All primitives run against one partition with its lock held by the caller.

// lookupTerm returns docs whose field contains token (exact token match).
func (p *indexPart) lookupTerm(field, token string) map[string]struct{} {
	out := make(map[string]struct{})
	if set := p.inverted[field][strings.ToLower(token)]; set != nil {
		for id := range set {
			out[id] = struct{}{}
		}
	}
	return out
}

// lookupBare returns docs matching token in any text field.
func (p *indexPart) lookupBare(token string) map[string]struct{} {
	out := make(map[string]struct{})
	for field := range textFields {
		for id := range p.lookupTerm(field, token) {
			out[id] = struct{}{}
		}
	}
	return out
}

// lookupPrefix returns docs whose field has a token with the given prefix.
func (p *indexPart) lookupPrefix(field, prefix string) map[string]struct{} {
	out := make(map[string]struct{})
	prefix = strings.ToLower(prefix)
	scan := func(f string) {
		for tok, set := range p.inverted[f] {
			if strings.HasPrefix(tok, prefix) {
				for id := range set {
					out[id] = struct{}{}
				}
			}
		}
	}
	if field != "" {
		scan(field)
		return out
	}
	for f := range textFields {
		scan(f)
	}
	return out
}

// lookupPhrase returns docs whose field raw value contains the phrase
// (case-insensitive substring).
func (p *indexPart) lookupPhrase(field, phrase string) map[string]struct{} {
	out := make(map[string]struct{})
	phrase = strings.ToLower(phrase)
	match := func(d *document, f string) bool {
		for _, v := range d.fields[f] {
			if strings.Contains(strings.ToLower(v), phrase) {
				return true
			}
		}
		return false
	}
	for id, d := range p.docs {
		if field != "" {
			if match(d, field) {
				out[id] = struct{}{}
			}
			continue
		}
		for f := range textFields {
			if match(d, f) {
				out[id] = struct{}{}
				break
			}
		}
	}
	return out
}

// lookupRange returns docs with a numeric value of field in [lo, hi].
func (p *indexPart) lookupRange(field string, lo, hi int64) map[string]struct{} {
	out := make(map[string]struct{})
	for id, d := range p.docs {
		for _, n := range d.numbers[field] {
			if n >= lo && n <= hi {
				out[id] = struct{}{}
				break
			}
		}
	}
	return out
}

// allDocs returns the partition's full doc id set (for NOT complement).
func (p *indexPart) allDocs() map[string]struct{} {
	out := make(map[string]struct{}, len(p.docs))
	for id := range p.docs {
		out[id] = struct{}{}
	}
	return out
}

func sortedIDs(set map[string]struct{}) []string {
	out := make([]string, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}
