// Package search implements the interactive search interface of paper §5.3:
// an inverted index over the current state of every entity, queried with a
// Lucene-like language (field references, boolean operators, phrases,
// wildcards, numeric ranges). It stands in for the Elasticsearch tier.
package search

import (
	"sort"
	"strconv"
	"strings"
	"sync"

	"censysmap/internal/entity"
)

// Index is the searchable view of current entity state. It is maintained
// incrementally from write-side events (hosts are upserted as they change
// and removed as they disappear) and is safe for concurrent use.
type Index struct {
	mu   sync.RWMutex
	docs map[string]*document
	// inverted maps field -> token -> docID set.
	inverted map[string]map[string]map[string]struct{}
}

// document keeps the raw values needed for phrase and range evaluation.
type document struct {
	id string
	// fields holds raw (not tokenized) values per field, multi-valued.
	fields map[string][]string
	// numbers holds numeric field values for range queries.
	numbers map[string][]int64
	host    *entity.Host
}

// NewIndex creates an empty index.
func NewIndex() *Index {
	return &Index{
		docs:     make(map[string]*document),
		inverted: make(map[string]map[string]map[string]struct{}),
	}
}

// textFields are searched by bare (fieldless) terms.
var textFields = map[string]bool{
	"services.banner": true, "services.http.title": true,
	"services.http.server": true, "as.org": true, "labels": true,
	"services.protocol": true, "software.product": true,
}

// Tokenize lowercases and splits a value into index tokens; the full
// lowercased value is always included as a token for exact matches.
func Tokenize(v string) []string {
	lower := strings.ToLower(v)
	fields := strings.FieldsFunc(lower, func(r rune) bool {
		return !(r >= 'a' && r <= 'z' || r >= '0' && r <= '9' || r == '.' || r == '-' || r == '_' || r == '/')
	})
	seen := map[string]bool{lower: true}
	out := []string{lower}
	for _, f := range fields {
		if !seen[f] {
			seen[f] = true
			out = append(out, f)
		}
	}
	return out
}

// Flatten converts a host record into indexable (field, values) pairs —
// the document schema of the search tier.
func Flatten(h *entity.Host) map[string][]string {
	out := map[string][]string{
		"ip": {h.IP.String()},
	}
	add := func(field, v string) {
		if v != "" {
			out[field] = append(out[field], v)
		}
	}
	if h.Location != nil {
		add("location.country", h.Location.Country)
		add("location.city", h.Location.City)
	}
	if h.AS != nil {
		add("as.number", strconv.FormatUint(uint64(h.AS.Number), 10))
		add("as.name", h.AS.Name)
		add("as.org", h.AS.Org)
	}
	for _, l := range h.Labels {
		add("labels", l)
	}
	for _, v := range h.Vulns {
		add("vulns", v)
	}
	for _, sw := range h.Software {
		add("software.product", sw.Product)
		add("software.vendor", sw.Vendor)
		add("software.version", sw.Version)
		add("software.cpe", sw.CPE())
	}
	for _, svc := range h.ActiveServices() {
		add("services.port", strconv.Itoa(int(svc.Port)))
		add("services.transport", string(svc.Transport))
		add("services.protocol", svc.Protocol)
		add("services.service_name", svc.Protocol) // paper's query syntax alias
		add("services.banner", svc.Banner)
		if svc.TLS {
			add("services.tls", "true")
		}
		add("services.cert_sha256", svc.CertSHA256)
		for k, v := range svc.Attributes {
			add("services."+k, v)
		}
	}
	return out
}

// Upsert indexes (or reindexes) a host's current state.
func (ix *Index) Upsert(h *entity.Host) {
	id := h.ID()
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.removeLocked(id)
	doc := &document{id: id, fields: Flatten(h),
		numbers: make(map[string][]int64), host: h.Clone()}
	for field, values := range doc.fields {
		for _, v := range values {
			if n, err := strconv.ParseInt(v, 10, 64); err == nil {
				doc.numbers[field] = append(doc.numbers[field], n)
			}
			for _, tok := range Tokenize(v) {
				ix.post(field, tok, id)
			}
		}
	}
	ix.docs[id] = doc
}

func (ix *Index) post(field, token, id string) {
	byTok := ix.inverted[field]
	if byTok == nil {
		byTok = make(map[string]map[string]struct{})
		ix.inverted[field] = byTok
	}
	set := byTok[token]
	if set == nil {
		set = make(map[string]struct{})
		byTok[token] = set
	}
	set[id] = struct{}{}
}

// Remove deletes an entity from the index.
func (ix *Index) Remove(id string) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.removeLocked(id)
}

func (ix *Index) removeLocked(id string) {
	doc := ix.docs[id]
	if doc == nil {
		return
	}
	for field, values := range doc.fields {
		for _, v := range values {
			for _, tok := range Tokenize(v) {
				if set := ix.inverted[field][tok]; set != nil {
					delete(set, id)
					if len(set) == 0 {
						delete(ix.inverted[field], tok)
					}
				}
			}
		}
	}
	delete(ix.docs, id)
}

// Len reports the number of indexed entities.
func (ix *Index) Len() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.docs)
}

// Host returns the indexed snapshot of an entity.
func (ix *Index) Host(id string) *entity.Host {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if d := ix.docs[id]; d != nil {
		return d.host.Clone()
	}
	return nil
}

// --- primitive query operations used by the executor ---

// lookupTerm returns docs whose field contains token (exact token match).
func (ix *Index) lookupTerm(field, token string) map[string]struct{} {
	out := make(map[string]struct{})
	if set := ix.inverted[field][strings.ToLower(token)]; set != nil {
		for id := range set {
			out[id] = struct{}{}
		}
	}
	return out
}

// lookupBare returns docs matching token in any text field.
func (ix *Index) lookupBare(token string) map[string]struct{} {
	out := make(map[string]struct{})
	for field := range textFields {
		for id := range ix.lookupTerm(field, token) {
			out[id] = struct{}{}
		}
	}
	return out
}

// lookupPrefix returns docs whose field has a token with the given prefix.
func (ix *Index) lookupPrefix(field, prefix string) map[string]struct{} {
	out := make(map[string]struct{})
	prefix = strings.ToLower(prefix)
	scan := func(f string) {
		for tok, set := range ix.inverted[f] {
			if strings.HasPrefix(tok, prefix) {
				for id := range set {
					out[id] = struct{}{}
				}
			}
		}
	}
	if field != "" {
		scan(field)
		return out
	}
	for f := range textFields {
		scan(f)
	}
	return out
}

// lookupPhrase returns docs whose field raw value contains the phrase
// (case-insensitive substring).
func (ix *Index) lookupPhrase(field, phrase string) map[string]struct{} {
	out := make(map[string]struct{})
	phrase = strings.ToLower(phrase)
	match := func(d *document, f string) bool {
		for _, v := range d.fields[f] {
			if strings.Contains(strings.ToLower(v), phrase) {
				return true
			}
		}
		return false
	}
	for id, d := range ix.docs {
		if field != "" {
			if match(d, field) {
				out[id] = struct{}{}
			}
			continue
		}
		for f := range textFields {
			if match(d, f) {
				out[id] = struct{}{}
				break
			}
		}
	}
	return out
}

// lookupRange returns docs with a numeric value of field in [lo, hi].
func (ix *Index) lookupRange(field string, lo, hi int64) map[string]struct{} {
	out := make(map[string]struct{})
	for id, d := range ix.docs {
		for _, n := range d.numbers[field] {
			if n >= lo && n <= hi {
				out[id] = struct{}{}
				break
			}
		}
	}
	return out
}

// allDocs returns the full doc id set (for NOT complement).
func (ix *Index) allDocs() map[string]struct{} {
	out := make(map[string]struct{}, len(ix.docs))
	for id := range ix.docs {
		out[id] = struct{}{}
	}
	return out
}

func sortedIDs(set map[string]struct{}) []string {
	out := make([]string, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}
