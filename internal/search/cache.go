package search

// The per-partition query cache maps a normalized query (the planner's
// canonical key, so `a and b` and `b and a` share an entry) to its sorted
// result IDs, stamped with the partition generation that produced it. Every
// Upsert/Remove bumps the partition's generation — in the assembled system
// those arrive through the cqrs.Processor.Subscribe feed that core wires to
// the index — so a stale entry fails its stamp comparison and is simply
// recomputed; there is no explicit invalidation walk. Repeated
// dashboard-style queries over an unchanged partition are near-free.

// maxCacheEntries bounds one partition's cache; on overflow the whole map is
// dropped (entries are cheap to recompute and churn implies stale stamps).
const maxCacheEntries = 512

// cacheEntry is one cached per-partition result.
type cacheEntry struct {
	gen uint64
	ids []string // sorted; treated as read-only by all readers
}

// cachedIDs returns the cached result for key if it is still current.
func (p *indexPart) cachedIDs(key string) ([]string, bool) {
	p.cacheMu.Lock()
	e, ok := p.cache[key]
	p.cacheMu.Unlock()
	if !ok || e.gen != p.gen.Load() {
		return nil, false
	}
	return e.ids, true
}

// storeIDs caches a result computed at generation gen.
func (p *indexPart) storeIDs(key string, gen uint64, ids []string) {
	p.cacheMu.Lock()
	if len(p.cache) >= maxCacheEntries {
		p.cache = make(map[string]cacheEntry)
	}
	p.cache[key] = cacheEntry{gen: gen, ids: ids}
	p.cacheMu.Unlock()
}

// SetQueryCache enables or disables the query cache (it is on by default).
// Benchmarks turn it off to measure raw evaluation cost.
func (ix *Index) SetQueryCache(on bool) { ix.cacheOff.Store(!on) }

// CacheStats reports query-cache effectiveness and the summed partition
// generation (which advances on every index mutation).
type CacheStats struct {
	Hits       uint64
	Misses     uint64
	Entries    int
	Generation uint64
	// PlanHits/PlanMisses count the prepared-statement (compiled plan)
	// cache, which is keyed by raw query text and never goes stale.
	PlanHits   uint64
	PlanMisses uint64
}

// Stats returns the index's cache counters.
func (ix *Index) Stats() CacheStats {
	st := CacheStats{
		Hits:       ix.hits.Load(),
		Misses:     ix.misses.Load(),
		PlanHits:   ix.planHits.Load(),
		PlanMisses: ix.planMisses.Load(),
	}
	for _, p := range ix.parts {
		p.cacheMu.Lock()
		st.Entries += len(p.cache)
		p.cacheMu.Unlock()
		st.Generation += p.gen.Load()
	}
	return st
}

// Generation returns the summed per-partition mutation counter: it advances
// on every Upsert/Remove, and an unchanged value proves (monotonicity per
// partition) that no partition mutated. The serving tier stamps pinned
// export snapshots and cache entries with it.
func (ix *Index) Generation() uint64 {
	var g uint64
	for _, p := range ix.parts {
		g += p.gen.Load()
	}
	return g
}

// PostingsEntries reports the total number of (document, token) postings
// plus numeric column entries resident across all partitions — the size of
// the index's core read structures, exported as a telemetry gauge.
func (ix *Index) PostingsEntries() int {
	total := 0
	for _, p := range ix.parts {
		p.mu.RLock()
		for _, toks := range p.inverted {
			for _, list := range toks {
				total += len(list)
			}
		}
		for _, col := range p.numeric {
			total += len(col)
		}
		p.mu.RUnlock()
	}
	return total
}
