package search

import (
	"net/netip"
	"testing"

	"censysmap/internal/entity"
)

func makeHost(ip string, country string, svcs ...*entity.Service) *entity.Host {
	h := entity.NewHost(netip.MustParseAddr(ip))
	h.Location = &entity.Location{Country: country}
	h.AS = &entity.AS{Number: 64500, Org: "Example Networks"}
	for _, s := range svcs {
		h.SetService(s)
	}
	return h
}

func svc(port uint16, proto string, attrs map[string]string) *entity.Service {
	return &entity.Service{Port: port, Transport: entity.TCP, Protocol: proto,
		Verified: true, Attributes: attrs}
}

func buildIndex(t *testing.T) *Index {
	t.Helper()
	ix := NewIndex()
	ix.Upsert(makeHost("10.0.0.1", "US",
		svc(80, "HTTP", map[string]string{"http.title": "Welcome to nginx!", "http.server": "nginx/1.24.0"}),
		svc(22, "SSH", nil)))
	ix.Upsert(makeHost("10.0.0.2", "DE",
		svc(443, "HTTP", map[string]string{"http.title": "MOVEit Transfer", "http.server": "Microsoft-IIS/10.0"})))
	h3 := makeHost("10.0.0.3", "US", svc(502, "MODBUS", map[string]string{"modbus.vendor": "Schneider Electric"}))
	h3.Labels = []string{"ics", "plc"}
	ix.Upsert(h3)
	h4 := makeHost("10.0.0.4", "CN", svc(8443, "HTTP", map[string]string{"http.title": "Login"}))
	h4.Services["8443/tcp"].TLS = true
	h4.Services["8443/tcp"].CertSHA256 = "aabbcc"
	ix.Upsert(h4)
	return ix
}

func ids(t *testing.T, ix *Index, q string) []string {
	t.Helper()
	got, err := ix.Search(q)
	if err != nil {
		t.Fatalf("Search(%q): %v", q, err)
	}
	return got
}

func wantIDs(t *testing.T, got []string, want ...string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestFieldTerm(t *testing.T) {
	ix := buildIndex(t)
	wantIDs(t, ids(t, ix, `services.protocol: MODBUS`), "10.0.0.3")
	wantIDs(t, ids(t, ix, `services.service_name="MODBUS"`), "10.0.0.3")
	wantIDs(t, ids(t, ix, `location.country: US`), "10.0.0.1", "10.0.0.3")
	wantIDs(t, ids(t, ix, `services.port: 22`), "10.0.0.1")
	wantIDs(t, ids(t, ix, `ip: 10.0.0.2`), "10.0.0.2")
}

func TestCaseInsensitiveValues(t *testing.T) {
	ix := buildIndex(t)
	wantIDs(t, ids(t, ix, `services.protocol: modbus`), "10.0.0.3")
}

func TestBooleanOperators(t *testing.T) {
	ix := buildIndex(t)
	wantIDs(t, ids(t, ix, `location.country: US and services.protocol: HTTP`), "10.0.0.1")
	wantIDs(t, ids(t, ix, `services.port: 502 or services.port: 443`), "10.0.0.2", "10.0.0.3")
	wantIDs(t, ids(t, ix, `location.country: US AND NOT services.protocol: MODBUS`), "10.0.0.1")
	// Adjacency implies AND.
	wantIDs(t, ids(t, ix, `location.country: US services.protocol: HTTP`), "10.0.0.1")
}

func TestParenGrouping(t *testing.T) {
	ix := buildIndex(t)
	wantIDs(t, ids(t, ix,
		`(location.country: US or location.country: DE) and services.protocol: HTTP`),
		"10.0.0.1", "10.0.0.2")
}

func TestPhraseSearch(t *testing.T) {
	ix := buildIndex(t)
	wantIDs(t, ids(t, ix, `"MOVEit Transfer"`), "10.0.0.2")
	wantIDs(t, ids(t, ix, `services.http.title: "Welcome to nginx"`), "10.0.0.1")
}

func TestBareTerm(t *testing.T) {
	ix := buildIndex(t)
	wantIDs(t, ids(t, ix, `modbus`), "10.0.0.3") // protocol is a text field
	wantIDs(t, ids(t, ix, `nginx`), "10.0.0.1")  // token inside server header
}

func TestPrefixWildcard(t *testing.T) {
	ix := buildIndex(t)
	wantIDs(t, ids(t, ix, `services.http.server: Microsoft*`), "10.0.0.2")
	wantIDs(t, ids(t, ix, `nginx*`), "10.0.0.1")
}

func TestNumericRange(t *testing.T) {
	ix := buildIndex(t)
	wantIDs(t, ids(t, ix, `services.port: [400 TO 600]`), "10.0.0.2", "10.0.0.3")
	wantIDs(t, ids(t, ix, `services.port: [8000 TO 9000]`), "10.0.0.4")
}

func TestTLSAndCertFields(t *testing.T) {
	ix := buildIndex(t)
	wantIDs(t, ids(t, ix, `services.tls: true`), "10.0.0.4")
	wantIDs(t, ids(t, ix, `services.cert_sha256: aabbcc`), "10.0.0.4")
}

func TestLabelSearch(t *testing.T) {
	ix := buildIndex(t)
	wantIDs(t, ids(t, ix, `labels: ics`), "10.0.0.3")
}

func TestUpsertReplacesState(t *testing.T) {
	ix := buildIndex(t)
	h := makeHost("10.0.0.1", "FR", svc(8080, "HTTP", nil))
	ix.Upsert(h)
	wantIDs(t, ids(t, ix, `services.port: 22`)) // old service gone
	wantIDs(t, ids(t, ix, `location.country: FR`), "10.0.0.1")
	if ix.Len() != 4 {
		t.Fatalf("Len = %d", ix.Len())
	}
}

func TestRemove(t *testing.T) {
	ix := buildIndex(t)
	ix.Remove("10.0.0.3")
	wantIDs(t, ids(t, ix, `services.protocol: MODBUS`))
	if ix.Len() != 3 {
		t.Fatalf("Len = %d", ix.Len())
	}
	ix.Remove("10.0.0.3") // idempotent
}

func TestPendingServicesInvisible(t *testing.T) {
	ix := NewIndex()
	h := makeHost("10.0.0.9", "US", svc(80, "HTTP", nil))
	now := h.LastUpdated
	h.Services["80/tcp"].PendingRemovalSince = &now
	ix.Upsert(h)
	wantIDs(t, ids(t, ix, `services.port: 80`))
}

func TestSearchHosts(t *testing.T) {
	ix := buildIndex(t)
	hosts, err := ix.SearchHosts(`labels: ics`)
	if err != nil || len(hosts) != 1 || hosts[0].IP.String() != "10.0.0.3" {
		t.Fatalf("hosts = %v err = %v", hosts, err)
	}
}

func TestCount(t *testing.T) {
	ix := buildIndex(t)
	n, err := ix.Count(`services.protocol: HTTP`)
	if err != nil || n != 3 {
		t.Fatalf("Count = %d err=%v", n, err)
	}
}

func TestQueryErrors(t *testing.T) {
	ix := buildIndex(t)
	bad := []string{
		``, `   `, `(a: b`, `a: b)`, `field:`, `"unterminated`,
		`port: [1 TO`, `port: [a TO 5]`, `port: [1 5]`, `and`, `not`,
	}
	for _, q := range bad {
		if _, err := ix.Search(q); err == nil {
			t.Errorf("Search(%q) succeeded, want error", q)
		}
	}
}

func TestComplexInvestigationQuery(t *testing.T) {
	ix := buildIndex(t)
	// A realistic operator query: externally exposed web consoles outside
	// the US that are not TLS-protected.
	got := ids(t, ix, `services.protocol: HTTP and not location.country: US and not services.tls: true`)
	wantIDs(t, got, "10.0.0.2")
}

func TestTokenize(t *testing.T) {
	toks := Tokenize("Welcome to nginx!")
	want := map[string]bool{"welcome to nginx!": true, "welcome": true, "to": true, "nginx": true}
	if len(toks) != len(want) {
		t.Fatalf("tokens = %v", toks)
	}
	for _, tok := range toks {
		if !want[tok] {
			t.Fatalf("unexpected token %q", tok)
		}
	}
}
