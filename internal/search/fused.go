package search

import "sync/atomic"

// legacyAnd switches evalAnd back to the pairwise-materializing evaluator.
// The fused evaluator is the default; the legacy path is kept for the
// fused-vs-legacy differential test and for A/B benchmark rows.
var legacyAnd atomic.Bool

// SetFusedAnd enables or disables the fused AND/AND-NOT evaluator (on by
// default). Both evaluators are bit-identical; the toggle exists so tests
// and benchmarks can compare them.
func SetFusedAnd(on bool) { legacyAnd.Store(!on) }

// evalAndFused evaluates a conjunction by streaming every candidate from the
// smallest include list through the remaining include and exclude lists with
// monotone cursors — one output allocation, no intermediate sets. Children
// are still evaluated in estimated-selectivity order so an empty conjunct
// short-circuits before the more expensive ones run.
func (p *indexPart) evalAndFused(a planAnd) []uint32 {
	var incBuf [8][]uint32
	inc := incBuf[:0]
	if len(a.include) == 0 {
		// A conjunction of only negations filters the whole live set.
		inc = append(inc, p.live)
	} else {
		var orderBuf, estBuf [8]int
		order, ests := orderBuf[:0], estBuf[:0]
		for i, c := range a.include {
			order = append(order, i)
			ests = append(ests, p.estimate(c))
		}
		// Stable insertion sort on the estimates (same order the legacy
		// evaluator's sort.SliceStable produces, without the closure alloc).
		for i := 1; i < len(order); i++ {
			for j := i; j > 0 && ests[order[j]] < ests[order[j-1]]; j-- {
				order[j], order[j-1] = order[j-1], order[j]
			}
		}
		for _, idx := range order {
			r := p.evalPlan(a.include[idx])
			if len(r) == 0 {
				return nil
			}
			inc = append(inc, r)
		}
	}
	var excBuf [8][]uint32
	exc := excBuf[:0]
	for _, c := range a.exclude {
		if r := p.evalPlan(c); len(r) > 0 {
			exc = append(exc, r)
		}
	}
	if len(inc) == 1 && len(exc) == 0 {
		// Alias return, matching the legacy single-include fast path; the
		// caller treats plan results as read-only.
		return inc[0]
	}
	// Estimates bound result sizes; the evaluated lengths are exact. Walk
	// the truly smallest list so the fused pass touches the fewest heads.
	for i := 1; i < len(inc); i++ {
		for j := i; j > 0 && len(inc[j]) < len(inc[j-1]); j-- {
			inc[j], inc[j-1] = inc[j-1], inc[j]
		}
	}
	return fuseAndNot(inc, exc)
}

// fuseAndNot returns (inc[0] ∩ inc[1] ∩ …) \ (exc[0] ∪ exc[1] ∪ …) with a
// single output allocation. Every list is sorted ascending; include lists
// are non-empty and inc is ordered smallest-first.
func fuseAndNot(inc, exc [][]uint32) []uint32 {
	drv, rest := inc[0], inc[1:]
	out := make([]uint32, 0, len(drv))
	if len(rest) == 0 {
		// Pure AND-NOT: cascade tight two-pointer subtractions through the
		// one output buffer, compacting in place after the first pass.
		out = diffAppend(out, drv, exc[0])
		for _, l := range exc[1:] {
			if len(out) == 0 {
				return out
			}
			out = diffInPlace(out, l)
		}
		return out
	}
	// k-way intersection: stream driver candidates through galloping monotone
	// cursors (selective drivers skip most of the bigger lists in O(log gap)
	// per candidate), then filter survivors against the excludes.
	var ciBuf, ceBuf [8]int
	ci, ce := ciBuf[:0], ceBuf[:0]
	for range rest {
		ci = append(ci, 0)
	}
	for range exc {
		ce = append(ce, 0)
	}
outer:
	for _, v := range drv {
		for k, l := range rest {
			j := gallop(l, ci[k], v)
			ci[k] = j
			if j == len(l) {
				// An include list ran out: no later candidate can match.
				return out
			}
			if l[j] != v {
				continue outer
			}
		}
		for k, l := range exc {
			j := gallop(l, ce[k], v)
			ce[k] = j
			if j < len(l) && l[j] == v {
				continue outer
			}
		}
		out = append(out, v)
	}
	return out
}

// gallop returns the smallest index j' >= j with l[j'] >= v (or len(l)):
// exponential probe from the cursor, then binary search inside the
// overshot window — O(log gap), and ~2 comparisons when the gap is 0 or 1.
func gallop(l []uint32, j int, v uint32) int {
	if j >= len(l) || l[j] >= v {
		return j
	}
	step := 1
	for j+step < len(l) && l[j+step] < v {
		j += step
		step <<= 1
	}
	lo, hi := j+1, j+step
	if hi > len(l) {
		hi = len(l)
	}
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if l[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// diffAppend appends a \ b onto dst (two-pointer over sorted inputs).
func diffAppend(dst, a, b []uint32) []uint32 {
	j := 0
	for _, v := range a {
		for j < len(b) && b[j] < v {
			j++
		}
		if j >= len(b) || b[j] != v {
			dst = append(dst, v)
		}
	}
	return dst
}

// diffInPlace compacts s to s \ b without allocating.
func diffInPlace(s, b []uint32) []uint32 {
	w, j := 0, 0
	for _, v := range s {
		for j < len(b) && b[j] < v {
			j++
		}
		if j >= len(b) || b[j] != v {
			s[w] = v
			w++
		}
	}
	return s[:w]
}
