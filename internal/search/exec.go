package search

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"censysmap/internal/entity"
)

// MaxQueryWorkers bounds the per-query fan-out over partitions. Partition
// evaluations are independent and the merge is order-deterministic, so the
// result is identical for any worker count.
var MaxQueryWorkers = 8

// Search parses and executes a query, returning matching entity IDs sorted.
func (ix *Index) Search(query string) ([]string, error) {
	q, err := ix.parseCached(query)
	if err != nil {
		return nil, err
	}
	return ix.Execute(q), nil
}

// parseCached compiles a query through the prepared-statement cache: a
// repeated query string skips lexing, parsing, and planning entirely.
// Compiled queries are immutable, so one *Query is safely shared by
// concurrent executions.
func (ix *Index) parseCached(query string) (*Query, error) {
	ix.planMu.Lock()
	q := ix.plans[query]
	ix.planMu.Unlock()
	if q != nil {
		ix.planHits.Add(1)
		return q, nil
	}
	ix.planMisses.Add(1)
	q, err := ParseQuery(query)
	if err != nil {
		return nil, err
	}
	ix.planMu.Lock()
	if len(ix.plans) >= maxCacheEntries {
		ix.plans = make(map[string]*Query)
	}
	ix.plans[query] = q
	ix.planMu.Unlock()
	return q, nil
}

// SearchHosts is Search returning the matched host records. Hosts are
// fetched with one batched pass per partition (a single lock acquisition
// cloning every match), not one lock round-trip per result.
func (ix *Index) SearchHosts(query string) ([]*entity.Host, error) {
	q, err := ix.parseCached(query)
	if err != nil {
		return nil, err
	}
	perPart := ix.partResults(q)
	hosts := make([][]*entity.Host, len(ix.parts))
	for i, p := range ix.parts {
		hosts[i] = p.hostsFor(perPart[i])
	}
	return mergeHostsByID(hosts), nil
}

// Execute runs a compiled query. Partitions hold disjoint document sets and
// every query operator is a per-document predicate, so the query is
// evaluated independently against each partition (in parallel, on a bounded
// worker pool) and the pre-sorted per-partition results are k-way merged —
// the merged query path over the sharded index.
func (ix *Index) Execute(q *Query) []string {
	return mergeSortedStrings(ix.partResults(q))
}

// Count returns the number of matches.
func (ix *Index) Count(query string) (int, error) {
	ids, err := ix.Search(query)
	if err != nil {
		return 0, err
	}
	return len(ids), nil
}

// partResults evaluates a query against every partition, fanning out over a
// bounded worker pool, returning each partition's sorted ID list.
func (ix *Index) partResults(q *Query) [][]string {
	out := make([][]string, len(ix.parts))
	workers := MaxQueryWorkers
	if workers > len(ix.parts) {
		workers = len(ix.parts)
	}
	if workers <= 1 {
		for i, p := range ix.parts {
			out[i] = ix.partQuery(p, q)
		}
		return out
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(ix.parts) {
					return
				}
				out[i] = ix.partQuery(ix.parts[i], q)
			}
		}()
	}
	wg.Wait()
	return out
}

// partQuery answers a query on one partition: cache probe, then plan
// evaluation under the read lock, then cache fill.
func (ix *Index) partQuery(p *indexPart, q *Query) []string {
	useCache := !ix.cacheOff.Load()
	if useCache {
		if ids, ok := p.cachedIDs(q.key); ok {
			ix.hits.Add(1)
			return ids
		}
		ix.misses.Add(1)
	}
	p.mu.RLock()
	gen := p.gen.Load()
	locals := p.evalPlan(q.plan)
	ids := make([]string, len(locals))
	for i, lid := range locals {
		ids[i] = p.byLocal[lid].id
	}
	p.mu.RUnlock()
	// Local IDs are dense ints in insertion order, not lexicographic order;
	// the contract is sorted entity IDs.
	sort.Strings(ids)
	if useCache {
		p.storeIDs(q.key, gen, ids)
	}
	return ids
}

// --- plan evaluation (caller holds the partition read lock) ---

// evalPlan returns the sorted local-ID result for a plan node. Returned
// slices may alias live posting lists and must be treated as read-only;
// every set operator allocates its output.
func (p *indexPart) evalPlan(n planNode) []uint32 {
	switch t := n.(type) {
	case planTerm:
		return p.evalTerm(t)
	case planAnd:
		return p.evalAnd(t)
	case planOr:
		var acc []uint32
		for i, c := range t.children {
			if i == 0 {
				acc = p.evalPlan(c)
				continue
			}
			acc = unionU32(acc, p.evalPlan(c))
		}
		return acc
	case planNot:
		return diffU32(p.live, p.evalPlan(t.child))
	default:
		return nil
	}
}

// evalAnd evaluates a conjunction. The default is the fused streaming
// evaluator (fused.go); the legacy pairwise-materializing evaluator below is
// kept behind SetFusedAnd for differential testing and A/B benchmarks.
func (p *indexPart) evalAnd(a planAnd) []uint32 {
	if !legacyAnd.Load() {
		return p.evalAndFused(a)
	}
	return p.evalAndLegacy(a)
}

// evalAndLegacy intersects include children in ascending estimated-
// selectivity order with early exit on empty, then subtracts each exclude
// child — the AND(x, NOT(y)) rewrite never materializes the partition's full
// doc set, but each pairwise intersectU32/diffU32 allocates an intermediate.
func (p *indexPart) evalAndLegacy(a planAnd) []uint32 {
	acc := p.live // read-only alias; conjunction of only negations starts here
	if len(a.include) == 1 {
		acc = p.evalPlan(a.include[0])
	} else if len(a.include) > 0 {
		order := make([]int, len(a.include))
		for i := range order {
			order[i] = i
		}
		ests := make([]int, len(a.include))
		for i, c := range a.include {
			ests[i] = p.estimate(c)
		}
		sort.SliceStable(order, func(x, y int) bool { return ests[order[x]] < ests[order[y]] })
		acc = p.evalPlan(a.include[order[0]])
		for _, idx := range order[1:] {
			if len(acc) == 0 {
				return acc
			}
			acc = intersectU32(acc, p.evalPlan(a.include[idx]))
		}
	}
	for _, c := range a.exclude {
		if len(acc) == 0 {
			return acc
		}
		acc = diffU32(acc, p.evalPlan(c))
	}
	return acc
}

// estimate bounds a node's result size cheaply (posting-list lengths for
// terms, column entry counts for ranges, partition size for scans). It only
// orders conjuncts; correctness never depends on it.
func (p *indexPart) estimate(n planNode) int {
	switch t := n.(type) {
	case planTerm:
		switch {
		case t.isRange:
			i, j := p.numeric[t.field].bounds(t.lo, t.hi)
			return j - i
		case t.phrase, t.prefix:
			return len(p.live)
		case t.field == "":
			sum := 0
			for _, f := range textFieldList {
				sum += len(p.inverted[f][t.value])
			}
			return sum
		default:
			return len(p.inverted[t.field][t.value])
		}
	case planAnd:
		min := len(p.live)
		for _, c := range t.include {
			if e := p.estimate(c); e < min {
				min = e
			}
		}
		return min
	case planOr:
		sum := 0
		for _, c := range t.children {
			sum += p.estimate(c)
		}
		return sum
	case planNot:
		return len(p.live)
	default:
		return 0
	}
}

// evalTerm answers a single match primitive as a sorted local-ID list.
func (p *indexPart) evalTerm(t planTerm) []uint32 {
	switch {
	case t.isRange:
		return p.numeric[t.field].rangeDocs(t.lo, t.hi)
	case t.prefix:
		return p.lookupPrefix(t.field, t.value)
	case t.phrase:
		return p.lookupPhrase(t.field, t.value)
	case t.field == "":
		var acc []uint32
		for _, f := range textFieldList {
			if list := p.inverted[f][t.value]; len(list) > 0 {
				acc = unionU32(acc, list)
			}
		}
		return acc
	default:
		return p.inverted[t.field][t.value]
	}
}

// lookupPrefix unions the posting lists of every token with the given
// (pre-lowercased) prefix in field, or in all text fields when field is
// empty.
func (p *indexPart) lookupPrefix(field, prefix string) []uint32 {
	var acc []uint32
	scan := func(f string) {
		for tok, list := range p.inverted[f] {
			if strings.HasPrefix(tok, prefix) {
				acc = unionU32(acc, list)
			}
		}
	}
	if field != "" {
		scan(field)
		return acc
	}
	for _, f := range textFieldList {
		scan(f)
	}
	return acc
}

// lookupPhrase scans live documents in order for a (pre-lowercased)
// substring match against the precomputed lowercased raw values — no
// per-query lowercasing. Output is sorted by construction.
func (p *indexPart) lookupPhrase(field, phrase string) []uint32 {
	var acc []uint32
	match := func(d *document, f string) bool {
		for _, v := range d.lowered[f] {
			if strings.Contains(v, phrase) {
				return true
			}
		}
		return false
	}
	for _, lid := range p.live {
		d := p.byLocal[lid]
		if field != "" {
			if match(d, field) {
				acc = append(acc, lid)
			}
			continue
		}
		for _, f := range textFieldList {
			if match(d, f) {
				acc = append(acc, lid)
				break
			}
		}
	}
	return acc
}

// mergeHostsByID k-way merges per-partition host lists (each sorted by
// entity ID) into one list sorted by entity ID.
func mergeHostsByID(lists [][]*entity.Host) []*entity.Host {
	total := 0
	for _, l := range lists {
		total += len(l)
	}
	out := make([]*entity.Host, 0, total)
	heads := make([]int, len(lists))
	for len(out) < total {
		min := -1
		for i, l := range lists {
			if heads[i] >= len(l) {
				continue
			}
			if min < 0 || l[heads[i]].ID() < lists[min][heads[min]].ID() {
				min = i
			}
		}
		out = append(out, lists[min][heads[min]])
		heads[min]++
	}
	return out
}
