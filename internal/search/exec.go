package search

import (
	"censysmap/internal/entity"
)

// Search parses and executes a query, returning matching entity IDs sorted.
func (ix *Index) Search(query string) ([]string, error) {
	q, err := ParseQuery(query)
	if err != nil {
		return nil, err
	}
	return ix.Execute(q), nil
}

// SearchHosts is Search returning the matched host records.
func (ix *Index) SearchHosts(query string) ([]*entity.Host, error) {
	ids, err := ix.Search(query)
	if err != nil {
		return nil, err
	}
	out := make([]*entity.Host, 0, len(ids))
	for _, id := range ids {
		if h := ix.Host(id); h != nil {
			out = append(out, h)
		}
	}
	return out, nil
}

// Execute runs a compiled query. Partitions hold disjoint document sets and
// every query operator is a per-document predicate, so the query is
// evaluated independently against each partition and the results unioned —
// the merged query path over the sharded index.
func (ix *Index) Execute(q *Query) []string {
	merged := make(map[string]struct{})
	for _, p := range ix.parts {
		p.mu.RLock()
		for id := range p.eval(q.root) {
			merged[id] = struct{}{}
		}
		p.mu.RUnlock()
	}
	return sortedIDs(merged)
}

// Count returns the number of matches.
func (ix *Index) Count(query string) (int, error) {
	ids, err := ix.Search(query)
	if err != nil {
		return 0, err
	}
	return len(ids), nil
}

func (p *indexPart) eval(n queryNode) map[string]struct{} {
	switch t := n.(type) {
	case termNode:
		return p.evalTerm(t)
	case andNode:
		var acc map[string]struct{}
		for _, c := range t.children {
			set := p.eval(c)
			if acc == nil {
				acc = set
				continue
			}
			acc = intersect(acc, set)
			if len(acc) == 0 {
				return acc
			}
		}
		return acc
	case orNode:
		acc := make(map[string]struct{})
		for _, c := range t.children {
			for id := range p.eval(c) {
				acc[id] = struct{}{}
			}
		}
		return acc
	case notNode:
		all := p.allDocs()
		for id := range p.eval(t.child) {
			delete(all, id)
		}
		return all
	default:
		return map[string]struct{}{}
	}
}

func (p *indexPart) evalTerm(t termNode) map[string]struct{} {
	switch {
	case t.isRange:
		return p.lookupRange(t.field, t.lo, t.hi)
	case t.prefix:
		return p.lookupPrefix(t.field, t.value)
	case t.phrase:
		return p.lookupPhrase(t.field, t.value)
	case t.field == "":
		return p.lookupBare(t.value)
	default:
		return p.lookupTerm(t.field, t.value)
	}
}

func intersect(a, b map[string]struct{}) map[string]struct{} {
	if len(b) < len(a) {
		a, b = b, a
	}
	out := make(map[string]struct{})
	for id := range a {
		if _, ok := b[id]; ok {
			out[id] = struct{}{}
		}
	}
	return out
}
