package search

import (
	"censysmap/internal/entity"
)

// Search parses and executes a query, returning matching entity IDs sorted.
func (ix *Index) Search(query string) ([]string, error) {
	q, err := ParseQuery(query)
	if err != nil {
		return nil, err
	}
	return ix.Execute(q), nil
}

// SearchHosts is Search returning the matched host records.
func (ix *Index) SearchHosts(query string) ([]*entity.Host, error) {
	ids, err := ix.Search(query)
	if err != nil {
		return nil, err
	}
	out := make([]*entity.Host, 0, len(ids))
	for _, id := range ids {
		if h := ix.Host(id); h != nil {
			out = append(out, h)
		}
	}
	return out, nil
}

// Execute runs a compiled query.
func (ix *Index) Execute(q *Query) []string {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return sortedIDs(ix.eval(q.root))
}

// Count returns the number of matches.
func (ix *Index) Count(query string) (int, error) {
	ids, err := ix.Search(query)
	if err != nil {
		return 0, err
	}
	return len(ids), nil
}

func (ix *Index) eval(n queryNode) map[string]struct{} {
	switch t := n.(type) {
	case termNode:
		return ix.evalTerm(t)
	case andNode:
		var acc map[string]struct{}
		for _, c := range t.children {
			set := ix.eval(c)
			if acc == nil {
				acc = set
				continue
			}
			acc = intersect(acc, set)
			if len(acc) == 0 {
				return acc
			}
		}
		return acc
	case orNode:
		acc := make(map[string]struct{})
		for _, c := range t.children {
			for id := range ix.eval(c) {
				acc[id] = struct{}{}
			}
		}
		return acc
	case notNode:
		all := ix.allDocs()
		for id := range ix.eval(t.child) {
			delete(all, id)
		}
		return all
	default:
		return map[string]struct{}{}
	}
}

func (ix *Index) evalTerm(t termNode) map[string]struct{} {
	switch {
	case t.isRange:
		return ix.lookupRange(t.field, t.lo, t.hi)
	case t.prefix:
		return ix.lookupPrefix(t.field, t.value)
	case t.phrase:
		return ix.lookupPhrase(t.field, t.value)
	case t.field == "":
		return ix.lookupBare(t.value)
	default:
		return ix.lookupTerm(t.field, t.value)
	}
}

func intersect(a, b map[string]struct{}) map[string]struct{} {
	if len(b) < len(a) {
		a, b = b, a
	}
	out := make(map[string]struct{})
	for id := range a {
		if _, ok := b[id]; ok {
			out[id] = struct{}{}
		}
	}
	return out
}
