package search

import (
	"sort"
	"strconv"
	"strings"
)

// The planner lowers the parsed AST into a normalized plan the executor
// evaluates per partition:
//
//   - nested AND/OR nodes are flattened into n-ary nodes;
//   - negation chains collapse (NOT NOT x → x);
//   - duplicate children of AND/OR are deduped and children are put in
//     canonical order, so `a and b` and `b and a` share one cache entry;
//   - negated conjuncts are split out: AND(x, NOT(y)) becomes a plan with
//     include=[x], exclude=[y], executed as a sorted-slice difference —
//     NOT under an AND never materializes the partition's full doc set.
//
// Every rewrite is an identity over set semantics (AND/OR are commutative
// and idempotent, x ∩ ¬y = x \ y), so the plan returns exactly the sorted
// IDs the unplanned tree would. Each node carries its canonical string form,
// built bottom-up exactly once; the root's key is the query-cache key.

// planNode is a normalized query-plan node.
type planNode interface {
	// Key returns the node's canonical form (computed at build time).
	Key() string
}

// planTerm is a match primitive with its value pre-lowercased, so no
// per-partition (or per-document) lowercasing happens at execution time.
type planTerm struct {
	field   string
	value   string // lowercased; empty for ranges
	phrase  bool
	prefix  bool
	isRange bool
	lo, hi  int64
	key     string
}

// planAnd intersects include and subtracts exclude (the AND/NOT rewrite).
// include may be empty (a conjunction of only negations): the executor then
// starts from the partition's live-document list.
type planAnd struct {
	include []planNode
	exclude []planNode
	key     string
}

// planOr unions its children.
type planOr struct {
	children []planNode
	key      string
}

// planNot complements its child against the partition's live documents. It
// survives normalization only outside an AND (top level or under OR).
type planNot struct {
	child planNode
	key   string
}

func (t planTerm) Key() string { return t.key }
func (a planAnd) Key() string  { return a.key }
func (o planOr) Key() string   { return o.key }
func (n planNot) Key() string  { return n.key }

// appendFramed appends s length-prefixed ("<len>:<bytes>"), making composite
// keys unambiguous regardless of the bytes inside values.
func appendFramed(buf []byte, s string) []byte {
	buf = strconv.AppendInt(buf, int64(len(s)), 10)
	buf = append(buf, ':')
	return append(buf, s...)
}

func termKey(t *planTerm) string {
	buf := make([]byte, 0, 16+len(t.field)+len(t.value))
	switch {
	case t.isRange:
		buf = append(buf, 'r')
	case t.phrase:
		buf = append(buf, 'p')
	case t.prefix:
		buf = append(buf, 'w')
	default:
		buf = append(buf, 't')
	}
	buf = appendFramed(buf, t.field)
	if t.isRange {
		buf = strconv.AppendInt(buf, t.lo, 10)
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, t.hi, 10)
	} else {
		buf = appendFramed(buf, t.value)
	}
	return string(buf)
}

func notKey(child planNode) string {
	ck := child.Key()
	buf := make([]byte, 0, len(ck)+8)
	buf = append(buf, 'n', '(')
	buf = appendFramed(buf, ck)
	buf = append(buf, ')')
	return string(buf)
}

func compositeKey(op byte, groups ...[]planNode) string {
	n := 4
	for _, g := range groups {
		for _, c := range g {
			n += len(c.Key()) + 8
		}
	}
	buf := make([]byte, 0, n)
	buf = append(buf, op, '(')
	for gi, g := range groups {
		if gi > 0 {
			buf = append(buf, ';')
		}
		for _, c := range g {
			buf = appendFramed(buf, c.Key())
		}
	}
	buf = append(buf, ')')
	return string(buf)
}

// dedupeSorted orders nodes by canonical key and drops duplicates — valid
// under AND and OR because both are commutative and idempotent.
func dedupeSorted(nodes []planNode) []planNode {
	if len(nodes) <= 1 {
		return nodes
	}
	sort.SliceStable(nodes, func(a, b int) bool { return nodes[a].Key() < nodes[b].Key() })
	out := nodes[:1]
	for _, n := range nodes[1:] {
		if n.Key() != out[len(out)-1].Key() {
			out = append(out, n)
		}
	}
	return out
}

// normCore normalizes a parsed node into its non-negated plan core plus
// whether the node is negated an odd number of times — negation chains
// collapse here, and AND pulls its children's negations into exclude.
func normCore(n queryNode) (planNode, bool) {
	switch t := n.(type) {
	case termNode:
		pt := planTerm{field: t.field, phrase: t.phrase, prefix: t.prefix,
			isRange: t.isRange, lo: t.lo, hi: t.hi}
		if !t.isRange {
			pt.value = strings.ToLower(t.value)
		}
		pt.key = termKey(&pt)
		return pt, false

	case notNode:
		core, neg := normCore(t.child)
		return core, !neg

	case andNode:
		var include, exclude []planNode
		for _, c := range t.children {
			core, neg := normCore(c)
			switch {
			case neg:
				exclude = append(exclude, core)
			default:
				if sub, ok := core.(planAnd); ok {
					include = append(include, sub.include...)
					exclude = append(exclude, sub.exclude...)
				} else {
					include = append(include, core)
				}
			}
		}
		include = dedupeSorted(include)
		exclude = dedupeSorted(exclude)
		if len(exclude) == 0 && len(include) == 1 {
			return include[0], false
		}
		return planAnd{include: include, exclude: exclude,
			key: compositeKey('a', include, exclude)}, false

	case orNode:
		var children []planNode
		for _, c := range t.children {
			core, neg := normCore(c)
			if neg {
				core = planNot{child: core, key: notKey(core)}
			}
			if sub, ok := core.(planOr); ok {
				children = append(children, sub.children...)
			} else {
				children = append(children, core)
			}
		}
		children = dedupeSorted(children)
		if len(children) == 1 {
			return children[0], false
		}
		return planOr{children: children, key: compositeKey('o', children)}, false

	default:
		// Unreachable for parser output; an empty OR matches nothing.
		return planOr{key: "o()"}, false
	}
}

// plan compiles a parsed query into its normalized plan plus cache key.
func plan(root queryNode) (planNode, string) {
	core, neg := normCore(root)
	if neg {
		core = planNot{child: core, key: notKey(core)}
	}
	return core, core.Key()
}
