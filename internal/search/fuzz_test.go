package search

import "testing"

// FuzzParseQuery: the search-query parser must never panic, and any query
// it accepts must re-parse from its own String form.
func FuzzParseQuery(f *testing.F) {
	for _, seed := range []string{
		``,
		`services.protocol: MODBUS`,
		`services.service_name="MODBUS"`,
		`location.country: US and services.protocol: HTTP`,
		`services.port: 502 or services.port: 443`,
		`location.country: US AND NOT services.protocol: MODBUS`,
		`(location.country: US or location.country: DE) and services.protocol: HTTP`,
		`"MOVEit Transfer"`,
		`services.http.title: "Welcome to nginx"`,
		`services.port: [8000 TO 9000]`,
		`services.port: [8000 TO 9000] and not services.tls: true`,
		`ip: 10.0.0.2`,
		`nginx`,
		`not not not x`,
		`a and or b`,
		`(broken and`,
		`field:`,
		`: value`,
		`a:"unterminated`,
		`[1 TO`,
		"\"\x00\xff\"",
		`🦀: 🦀`,
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := ParseQuery(src)
		if err != nil {
			return
		}
		if _, err := ParseQuery(q.String()); err != nil {
			t.Fatalf("accepted %q but re-parse of String %q failed: %v", src, q.String(), err)
		}
	})
}
