// Package enrich implements read-time context derivation (paper §5.2): the
// read side combines journaled scan data with external datasets (GeoIP,
// WHOIS/ASN, CVEs) and derives higher-level attributes — device manufacturer
// and model, software versions (CPE-style), vulnerability exposure, and
// device-type labels — through static fingerprints written as declarative
// filters and the Lisp-like DSL of package fingerdsl.
package enrich

import (
	"net/netip"
	"sort"
	"strconv"
	"strings"

	"censysmap/internal/entity"
	"censysmap/internal/fingerdsl"
)

// GeoDB maps address ranges to locations, like a commercial GeoIP feed.
type GeoDB struct {
	entries []geoEntry // sorted by prefix base
}

type geoEntry struct {
	prefix  netip.Prefix
	country string
	city    string
}

// NewGeoDB creates an empty database.
func NewGeoDB() *GeoDB { return &GeoDB{} }

// Add registers a prefix's location.
func (g *GeoDB) Add(prefix netip.Prefix, country, city string) {
	g.entries = append(g.entries, geoEntry{prefix: prefix, country: country, city: city})
	sort.Slice(g.entries, func(i, j int) bool {
		if g.entries[i].prefix.Addr() != g.entries[j].prefix.Addr() {
			return g.entries[i].prefix.Addr().Less(g.entries[j].prefix.Addr())
		}
		return g.entries[i].prefix.Bits() > g.entries[j].prefix.Bits()
	})
}

// Lookup returns the most specific location covering addr.
func (g *GeoDB) Lookup(addr netip.Addr) (*entity.Location, bool) {
	best := -1
	bestBits := -1
	for i, e := range g.entries {
		if e.prefix.Contains(addr) && e.prefix.Bits() > bestBits {
			best, bestBits = i, e.prefix.Bits()
		}
	}
	if best < 0 {
		return nil, false
	}
	return &entity.Location{Country: g.entries[best].country, City: g.entries[best].city}, true
}

// Len reports the number of entries.
func (g *GeoDB) Len() int { return len(g.entries) }

// ASNDB maps prefixes to origin AS and organization (WHOIS-style data).
type ASNDB struct {
	entries []asnEntry
}

type asnEntry struct {
	prefix netip.Prefix
	as     entity.AS
}

// NewASNDB creates an empty database.
func NewASNDB() *ASNDB { return &ASNDB{} }

// Add registers a prefix's origin.
func (a *ASNDB) Add(prefix netip.Prefix, number uint32, name, org string) {
	a.entries = append(a.entries, asnEntry{prefix: prefix,
		as: entity.AS{Number: number, Name: name, Org: org}})
}

// Lookup returns the most specific AS covering addr.
func (a *ASNDB) Lookup(addr netip.Addr) (*entity.AS, bool) {
	bestBits := -1
	var best *entity.AS
	for i := range a.entries {
		e := &a.entries[i]
		if e.prefix.Contains(addr) && e.prefix.Bits() > bestBits {
			bestBits = e.prefix.Bits()
			best = &e.as
		}
	}
	if best == nil {
		return nil, false
	}
	out := *best
	return &out, true
}

// CVERule matches a vulnerability against derived software labels.
type CVERule struct {
	ID      string
	Vendor  string
	Product string
	// Versions lists affected exact versions; empty means any.
	Versions []string
}

// Matches reports whether the rule applies to the software label.
func (r *CVERule) Matches(sw entity.Software) bool {
	if !strings.EqualFold(r.Vendor, sw.Vendor) || !strings.EqualFold(r.Product, sw.Product) {
		return false
	}
	if len(r.Versions) == 0 {
		return true
	}
	for _, v := range r.Versions {
		if v == sw.Version {
			return true
		}
	}
	return false
}

// Fingerprint derives software/device identity from service fields. Match is
// either declarative (Field+Equals/Contains) or a DSL expression; exactly
// one mechanism should be set.
type Fingerprint struct {
	Name string
	// Declarative filter:
	Field    string
	Equals   string
	Contains string
	// DSL filter:
	Expr *fingerdsl.Expr
	// Derived outputs:
	Software *entity.Software
	Labels   []string
}

// matches evaluates the fingerprint against a field context.
func (f *Fingerprint) matches(ctx fingerdsl.MapContext) bool {
	if f.Expr != nil {
		return f.Expr.Match(ctx)
	}
	v, ok := ctx[f.Field]
	if !ok {
		return false
	}
	if f.Equals != "" {
		return v == f.Equals
	}
	if f.Contains != "" {
		return strings.Contains(v, f.Contains)
	}
	return false
}

// Enricher attaches derived context at read time. It implements
// cqrs.Enricher.
type Enricher struct {
	Geo          *GeoDB
	ASN          *ASNDB
	CVEs         []CVERule
	Fingerprints []Fingerprint
}

// New creates an enricher with the built-in fingerprint and CVE tables.
func New(geo *GeoDB, asn *ASNDB) *Enricher {
	return &Enricher{Geo: geo, ASN: asn, CVEs: BuiltinCVEs(), Fingerprints: BuiltinFingerprints()}
}

// serviceContext flattens a service record into DSL fields.
func serviceContext(svc *entity.Service) fingerdsl.MapContext {
	ctx := fingerdsl.MapContext{
		"port":     strconv.Itoa(int(svc.Port)),
		"protocol": svc.Protocol,
		"banner":   svc.Banner,
	}
	if svc.TLS {
		ctx["tls"] = "true"
	}
	for k, v := range svc.Attributes {
		ctx[k] = v
	}
	return ctx
}

// Enrich implements cqrs.Enricher: geolocation, routing, fingerprint-derived
// software and labels, and CVE exposure.
func (e *Enricher) Enrich(h *entity.Host) {
	if e.Geo != nil {
		if loc, ok := e.Geo.Lookup(h.IP); ok {
			h.Location = loc
		}
	}
	if e.ASN != nil {
		if as, ok := e.ASN.Lookup(h.IP); ok {
			h.AS = as
		}
	}

	seenSW := map[string]bool{}
	seenLabel := map[string]bool{}
	h.Software = nil
	h.Labels = nil
	h.Vulns = nil
	for _, svc := range h.ActiveServices() {
		ctx := serviceContext(svc)
		for i := range e.Fingerprints {
			fp := &e.Fingerprints[i]
			if !fp.matches(ctx) {
				continue
			}
			if fp.Software != nil {
				key := fp.Software.CPE()
				if !seenSW[key] {
					seenSW[key] = true
					h.Software = append(h.Software, *fp.Software)
				}
			}
			for _, l := range fp.Labels {
				if !seenLabel[l] {
					seenLabel[l] = true
					h.Labels = append(h.Labels, l)
				}
			}
		}
		// Protocol-intrinsic labels.
		if p := icsProtocols[svc.Protocol]; p && svc.Verified {
			if !seenLabel["ics"] {
				seenLabel["ics"] = true
				h.Labels = append(h.Labels, "ics")
			}
		}
	}
	sort.Strings(h.Labels)

	seenCVE := map[string]bool{}
	for _, sw := range h.Software {
		for i := range e.CVEs {
			r := &e.CVEs[i]
			if r.Matches(sw) && !seenCVE[r.ID] {
				seenCVE[r.ID] = true
				h.Vulns = append(h.Vulns, r.ID)
			}
		}
	}
	sort.Strings(h.Vulns)
}

// icsProtocols mirrors the protocol registry's ICS set; kept as a literal to
// avoid an import cycle with the protocols package.
var icsProtocols = map[string]bool{
	"MODBUS": true, "S7": true, "BACNET": true, "DNP3": true, "FOX": true,
	"EIP": true, "ATG": true, "CODESYS": true, "FINS": true, "IEC104": true,
	"GE_SRTP": true, "REDLION": true, "PCWORX": true, "PROCONOS": true,
	"HART": true, "WDBRPC": true,
}
