package enrich

import (
	"censysmap/internal/entity"
	"censysmap/internal/fingerdsl"
)

// BuiltinFingerprints returns the static fingerprint table. The production
// system checks over 10K of these (first- and third-party, Recog-style);
// this table carries one per product in the simulation's catalogs plus a few
// behavioural ones, which is full coverage of the synthetic universe.
func BuiltinFingerprints() []Fingerprint {
	sw := func(vendor, product, version, part string) *entity.Software {
		return &entity.Software{Vendor: vendor, Product: product, Version: version, Part: part}
	}
	return []Fingerprint{
		// --- HTTP servers (declarative, server-header keyed) ---
		{Name: "nginx", Field: "http.server", Contains: "nginx",
			Software: sw("F5", "nginx", "", "a"), Labels: []string{"web"}},
		{Name: "apache-httpd", Field: "http.server", Contains: "Apache httpd",
			Software: sw("Apache", "Apache httpd", "", "a"), Labels: []string{"web"}},
		{Name: "iis", Field: "http.server", Contains: "Microsoft-IIS",
			Software: sw("Microsoft", "IIS", "", "a"), Labels: []string{"web"}},
		{Name: "jetty", Field: "http.server", Contains: "Jetty",
			Software: sw("Eclipse", "Jetty", "", "a"), Labels: []string{"web"}},

		// --- Version-pinned fingerprints via DSL ---
		{Name: "apache-2.4.49", Expr: fingerdsl.MustParse(`(= http.server "Apache httpd/2.4.49")`),
			Software: sw("Apache", "Apache httpd", "2.4.49", "a")},
		{Name: "moveit", Expr: fingerdsl.MustParse(`(contains http.title "MOVEit Transfer")`),
			Software: sw("Progress", "MOVEit Transfer", "2023.0.1", "a"),
			Labels:   []string{"file-transfer", "web"}},
		{Name: "openssh-7.4", Expr: fingerdsl.MustParse(`(prefix ssh.version "SSH-2.0-OpenSSH_7.4")`),
			Software: sw("OpenBSD", "OpenSSH", "7.4", "a")},
		{Name: "mysql-5.7", Expr: fingerdsl.MustParse(`(prefix mysql.version "5.7")`),
			Software: sw("Oracle", "MySQL", "5.7", "a"), Labels: []string{"database"}},

		// --- Device fingerprints (the paper's html_title example style) ---
		{Name: "zyxel-wac6552ds", Field: "http.title", Equals: "WAC6552D-S",
			Software: sw("Zyxel", "WAC6552D-S", "", "h"), Labels: []string{"network-device"}},
		{Name: "routeros", Field: "http.title", Contains: "RouterOS",
			Software: sw("MikroTik", "RouterOS", "", "o"), Labels: []string{"network-device", "router"}},
		{Name: "fortigate", Expr: fingerdsl.MustParse(`(contains http.www_authenticate "FortiGate")`),
			Software: sw("Fortinet", "FortiGate", "", "h"), Labels: []string{"network-device", "vpn"}},
		{Name: "hikvision-cam", Expr: fingerdsl.MustParse(`(or (contains http.www_authenticate "Hikvision") (= http.title "Network Camera"))`),
			Software: sw("Hikvision", "Network Camera", "", "h"), Labels: []string{"camera", "iot"}},
		{Name: "grafana", Field: "http.title", Contains: "Grafana",
			Software: sw("Grafana", "Grafana", "", "a"), Labels: []string{"dashboard", "web"}},
		{Name: "prometheus", Field: "http.title", Contains: "Prometheus",
			Software: sw("Prometheus", "Prometheus", "", "a"), Labels: []string{"dashboard", "web"}},

		// --- Banner-keyed (non-HTTP) ---
		{Name: "openssh", Expr: fingerdsl.MustParse(`(contains ssh.version "OpenSSH")`),
			Software: sw("OpenBSD", "OpenSSH", "", "a"), Labels: []string{"remote-access"}},
		{Name: "dropbear", Expr: fingerdsl.MustParse(`(contains ssh.version "dropbear")`),
			Software: sw("Dropbear", "dropbear", "", "a"), Labels: []string{"remote-access", "iot"}},
		{Name: "postfix", Expr: fingerdsl.MustParse(`(contains smtp.banner "Postfix")`),
			Software: sw("Postfix", "Postfix", "", "a"), Labels: []string{"mail"}},
		{Name: "exim", Expr: fingerdsl.MustParse(`(contains smtp.banner "Exim")`),
			Software: sw("Exim", "Exim", "", "a"), Labels: []string{"mail"}},
		{Name: "vsftpd", Expr: fingerdsl.MustParse(`(contains ftp.banner "vsFTPd")`),
			Software: sw("vsFTPd", "vsFTPd", "", "a")},
		{Name: "proftpd", Expr: fingerdsl.MustParse(`(contains ftp.banner "ProFTPD")`),
			Software: sw("ProFTPD", "ProFTPD", "", "a")},
		{Name: "bind", Expr: fingerdsl.MustParse(`(contains dns.version_bind "BIND")`),
			Software: sw("ISC", "BIND", "", "a"), Labels: []string{"dns"}},
		{Name: "dnsmasq", Expr: fingerdsl.MustParse(`(contains dns.version_bind "dnsmasq")`),
			Software: sw("Thekelleys", "dnsmasq", "", "a"), Labels: []string{"dns", "iot"}},
		{Name: "telnet-busybox", Expr: fingerdsl.MustParse(`(contains telnet.banner "BusyBox")`),
			Software: sw("Busybox", "BusyBox", "", "a"), Labels: []string{"iot"}},
		{Name: "redis", Expr: fingerdsl.MustParse(`(exists redis.version)`),
			Software: sw("Redis", "Redis", "", "a"), Labels: []string{"database"}},
		{Name: "open-redis", Expr: fingerdsl.MustParse(`(and (= protocol "REDIS") (not (exists redis.auth_required)))`),
			Labels: []string{"exposed-database"}},

		// --- ICS device identities ---
		{Name: "siemens-s7", Expr: fingerdsl.MustParse(`(prefix s7.module "6ES7")`),
			Software: sw("Siemens", "SIMATIC S7", "", "h"), Labels: []string{"plc"}},
		{Name: "schneider-modbus", Expr: fingerdsl.MustParse(`(contains modbus.vendor "Schneider")`),
			Software: sw("Schneider Electric", "Modicon", "", "h"), Labels: []string{"plc"}},
		{Name: "niagara-fox", Expr: fingerdsl.MustParse(`(exists fox.station)`),
			Software: sw("Tridium", "Niagara", "", "a"), Labels: []string{"building-automation"}},
		{Name: "tank-gauge", Expr: fingerdsl.MustParse(`(= protocol "ATG")`),
			Software: sw("Veeder-Root", "TLS-350", "", "h"), Labels: []string{"fuel-monitoring"}},
		{Name: "scada-hmi-water", Expr: fingerdsl.MustParse(`(and (= protocol "HTTP") (contains (lower http.title) "water"))`),
			Labels: []string{"hmi", "water-utility"}},
	}
}

// BuiltinCVEs returns the vulnerability table matched against derived
// software labels. IDs are real CVEs for the products the catalogs emit.
func BuiltinCVEs() []CVERule {
	return []CVERule{
		{ID: "CVE-2021-41773", Vendor: "Apache", Product: "Apache httpd", Versions: []string{"2.4.49"}},
		{ID: "CVE-2023-34362", Vendor: "Progress", Product: "MOVEit Transfer"},
		{ID: "CVE-2018-15473", Vendor: "OpenBSD", Product: "OpenSSH", Versions: []string{"7.4"}},
		{ID: "CVE-2016-6662", Vendor: "Oracle", Product: "MySQL", Versions: []string{"5.7"}},
		{ID: "CVE-2018-14847", Vendor: "MikroTik", Product: "RouterOS"},
		{ID: "CVE-2017-7921", Vendor: "Hikvision", Product: "Network Camera"},
	}
}
