package enrich

import (
	"net/netip"
	"testing"

	"censysmap/internal/entity"
	"censysmap/internal/fingerdsl"
)

func TestGeoDBMostSpecificWins(t *testing.T) {
	g := NewGeoDB()
	g.Add(netip.MustParsePrefix("10.0.0.0/8"), "US", "")
	g.Add(netip.MustParsePrefix("10.1.0.0/16"), "DE", "Frankfurt")
	loc, ok := g.Lookup(netip.MustParseAddr("10.1.2.3"))
	if !ok || loc.Country != "DE" || loc.City != "Frankfurt" {
		t.Fatalf("loc = %+v ok=%v", loc, ok)
	}
	loc, ok = g.Lookup(netip.MustParseAddr("10.2.0.1"))
	if !ok || loc.Country != "US" {
		t.Fatalf("loc = %+v", loc)
	}
	if _, ok := g.Lookup(netip.MustParseAddr("192.168.0.1")); ok {
		t.Fatal("uncovered address resolved")
	}
}

func TestASNDBLookup(t *testing.T) {
	a := NewASNDB()
	a.Add(netip.MustParsePrefix("10.0.0.0/8"), 64500, "BIGNET", "Big Networks LLC")
	a.Add(netip.MustParsePrefix("10.5.0.0/16"), 14618, "AMAZON-AES", "Simazon Cloud")
	as, ok := a.Lookup(netip.MustParseAddr("10.5.1.1"))
	if !ok || as.Number != 14618 {
		t.Fatalf("as = %+v", as)
	}
	as, _ = a.Lookup(netip.MustParseAddr("10.200.0.1"))
	if as.Number != 64500 {
		t.Fatalf("as = %+v", as)
	}
}

func hostWith(svcs ...*entity.Service) *entity.Host {
	h := entity.NewHost(netip.MustParseAddr("10.0.0.1"))
	for _, s := range svcs {
		h.SetService(s)
	}
	return h
}

func TestFingerprintDerivesSoftwareAndLabels(t *testing.T) {
	e := New(nil, nil)
	h := hostWith(&entity.Service{Port: 8080, Transport: entity.TCP, Protocol: "HTTP",
		Verified: true,
		Attributes: map[string]string{
			"http.server": "nginx/1.24.0",
			"http.title":  "RouterOS router configuration page",
		}})
	e.Enrich(h)
	if !hasSoftware(h, "nginx") || !hasSoftware(h, "RouterOS") {
		t.Fatalf("software = %+v", h.Software)
	}
	if !hasLabel(h, "router") || !hasLabel(h, "web") {
		t.Fatalf("labels = %v", h.Labels)
	}
	if !hasVuln(h, "CVE-2018-14847") {
		t.Fatalf("vulns = %v (RouterOS CVE missing)", h.Vulns)
	}
}

func TestVersionPinnedCVE(t *testing.T) {
	e := New(nil, nil)
	vulnerable := hostWith(&entity.Service{Port: 80, Transport: entity.TCP, Protocol: "HTTP",
		Verified:   true,
		Attributes: map[string]string{"http.server": "Apache httpd/2.4.49"}})
	e.Enrich(vulnerable)
	if !hasVuln(vulnerable, "CVE-2021-41773") {
		t.Fatalf("vulns = %v", vulnerable.Vulns)
	}
	patched := hostWith(&entity.Service{Port: 80, Transport: entity.TCP, Protocol: "HTTP",
		Verified:   true,
		Attributes: map[string]string{"http.server": "Apache httpd/2.4.57"}})
	e.Enrich(patched)
	if hasVuln(patched, "CVE-2021-41773") {
		t.Fatal("patched version flagged vulnerable")
	}
}

func TestICSLabelRequiresVerified(t *testing.T) {
	e := New(nil, nil)
	verified := hostWith(&entity.Service{Port: 502, Transport: entity.TCP,
		Protocol: "MODBUS", Verified: true})
	e.Enrich(verified)
	if !hasLabel(verified, "ics") {
		t.Fatalf("labels = %v", verified.Labels)
	}
	unverified := hostWith(&entity.Service{Port: 502, Transport: entity.TCP,
		Protocol: "MODBUS", Verified: false})
	e.Enrich(unverified)
	if hasLabel(unverified, "ics") {
		t.Fatal("unverified protocol got ics label")
	}
}

func TestEnrichIdempotent(t *testing.T) {
	e := New(nil, nil)
	h := hostWith(&entity.Service{Port: 80, Transport: entity.TCP, Protocol: "HTTP",
		Verified:   true,
		Attributes: map[string]string{"http.server": "nginx/1.24.0"}})
	e.Enrich(h)
	sw1, l1, v1 := len(h.Software), len(h.Labels), len(h.Vulns)
	e.Enrich(h)
	if len(h.Software) != sw1 || len(h.Labels) != l1 || len(h.Vulns) != v1 {
		t.Fatalf("enrichment not idempotent: %d/%d/%d vs %d/%d/%d",
			len(h.Software), len(h.Labels), len(h.Vulns), sw1, l1, v1)
	}
}

func TestPendingServicesNotEnriched(t *testing.T) {
	e := New(nil, nil)
	h := hostWith(&entity.Service{Port: 80, Transport: entity.TCP, Protocol: "HTTP",
		Verified:   true,
		Attributes: map[string]string{"http.server": "nginx/1.24.0"}})
	now := h.LastUpdated
	h.Service(entity.ServiceKey{Port: 80, Transport: entity.TCP}).PendingRemovalSince = &now
	e.Enrich(h)
	if len(h.Software) != 0 {
		t.Fatalf("pending service enriched: %v", h.Software)
	}
}

func TestGeoAndASNAttached(t *testing.T) {
	g := NewGeoDB()
	g.Add(netip.MustParsePrefix("10.0.0.0/24"), "JP", "Tokyo")
	a := NewASNDB()
	a.Add(netip.MustParsePrefix("10.0.0.0/24"), 2497, "IIJ", "Internet Initiative Japan")
	e := New(g, a)
	h := hostWith()
	e.Enrich(h)
	if h.Location == nil || h.Location.Country != "JP" {
		t.Fatalf("location = %+v", h.Location)
	}
	if h.AS == nil || h.AS.Number != 2497 {
		t.Fatalf("as = %+v", h.AS)
	}
}

func TestCustomDSLFingerprint(t *testing.T) {
	e := New(nil, nil)
	e.Fingerprints = append(e.Fingerprints, Fingerprint{
		Name:   "custom-c2",
		Expr:   fingerdsl.MustParse(`(and (= protocol "HTTP") (= http.body_sha256 "deadbeef00000000"))`),
		Labels: []string{"c2"},
	})
	h := hostWith(&entity.Service{Port: 8443, Transport: entity.TCP, Protocol: "HTTP",
		Verified:   true,
		Attributes: map[string]string{"http.body_sha256": "deadbeef00000000"}})
	e.Enrich(h)
	if !hasLabel(h, "c2") {
		t.Fatalf("labels = %v", h.Labels)
	}
}

func TestCVERuleMatching(t *testing.T) {
	r := CVERule{ID: "X", Vendor: "V", Product: "P", Versions: []string{"1", "2"}}
	if !r.Matches(entity.Software{Vendor: "v", Product: "p", Version: "1"}) {
		t.Fatal("case-insensitive match failed")
	}
	if r.Matches(entity.Software{Vendor: "V", Product: "P", Version: "3"}) {
		t.Fatal("wrong version matched")
	}
	any := CVERule{ID: "Y", Vendor: "V", Product: "P"}
	if !any.Matches(entity.Software{Vendor: "V", Product: "P", Version: "9.9"}) {
		t.Fatal("any-version rule failed")
	}
}

func hasSoftware(h *entity.Host, product string) bool {
	for _, s := range h.Software {
		if s.Product == product {
			return true
		}
	}
	return false
}

func hasLabel(h *entity.Host, label string) bool {
	for _, l := range h.Labels {
		if l == label {
			return true
		}
	}
	return false
}

func hasVuln(h *entity.Host, id string) bool {
	for _, v := range h.Vulns {
		if v == id {
			return true
		}
	}
	return false
}
