package discovery

import (
	"encoding/json"
	"testing"
)

func TestLedgerGrantSplitsTickBudget(t *testing.T) {
	l := NewLedger()
	l.Register("priority", 10)
	l.Register(ClassPredict, 4)

	l.BeginTick()
	if g := l.Grant("priority"); g != 10 {
		t.Fatalf("priority grant = %d, want 10", g)
	}
	for i := 0; i < 10; i++ {
		l.Spend("priority")
	}
	if g := l.Grant("priority"); g != 0 {
		t.Fatalf("priority grant after full spend = %d, want 0", g)
	}
	// Predict's own allocation survives the other class spending its share.
	if g := l.Grant(ClassPredict); g != 4 {
		t.Fatalf("predict grant = %d, want 4", g)
	}
	l.Spend(ClassPredict)
	if g := l.Grant(ClassPredict); g != 3 {
		t.Fatalf("predict grant after one spend = %d, want 3", g)
	}
	// Next tick resets per-tick spend but keeps cumulative totals.
	l.BeginTick()
	if g := l.Grant("priority"); g != 10 {
		t.Fatalf("priority grant next tick = %d, want 10", g)
	}
	if got := l.ClassTotals("priority").Spent; got != 10 {
		t.Fatalf("cumulative priority spend = %d, want 10", got)
	}
}

func TestLedgerSharedCapGatesOverspend(t *testing.T) {
	l := NewLedger()
	l.Register("a", 5)
	l.Register("b", 5)
	l.BeginTick()
	// A class that overshoots its allocation eats into the shared total,
	// shrinking everyone else's grant.
	for i := 0; i < 8; i++ {
		l.Spend("a")
	}
	if g := l.Grant("b"); g != 2 {
		t.Fatalf("b grant with shared total nearly spent = %d, want 2", g)
	}
	l.Spend("b")
	l.Spend("b")
	if g := l.Grant("b"); g != 0 {
		t.Fatalf("b grant at shared cap = %d, want 0", g)
	}
	if g := l.Grant("unregistered"); g != 0 {
		t.Fatalf("unregistered class granted %d probes", g)
	}
}

func TestLedgerAccountingAndEfficiency(t *testing.T) {
	l := NewLedger()
	l.Register(ClassSeed, 0)
	l.Register(ClassPredict, 10)
	l.BeginTick()
	for i := 0; i < 4; i++ {
		l.Spend(ClassPredict)
	}
	l.Confirm(ClassPredict)
	l.Confirm(ClassPredict)
	l.Confirm(ClassPredict)
	// Seed has no per-tick allocation but still accounts its spend.
	l.Spend(ClassSeed)

	ct := l.ClassTotals(ClassPredict)
	if ct.Spent != 4 || ct.Confirmed != 3 || ct.Wasted() != 1 {
		t.Fatalf("predict totals = %+v (wasted %d)", ct, ct.Wasted())
	}
	if eff := ct.Efficiency(); eff != 0.75 {
		t.Fatalf("predict efficiency = %v, want 0.75", eff)
	}
	if got := l.TotalSpent(); got != 5 {
		t.Fatalf("total spent = %d, want 5", got)
	}
	if eff := l.ClassTotals("nope").Efficiency(); eff != 0 {
		t.Fatalf("empty class efficiency = %v, want 0", eff)
	}
}

func TestLedgerStateRoundTrip(t *testing.T) {
	l := NewLedger()
	l.Register("zz", 3)
	l.Register("aa", 3)
	l.BeginTick()
	l.Spend("zz")
	l.Spend("zz")
	l.Confirm("zz")
	l.Spend("aa")

	st := l.State()
	// Serialized totals are sorted by class for determinism.
	if len(st.Classes) != 2 || st.Classes[0].Class != "aa" || st.Classes[1].Class != "zz" {
		t.Fatalf("state classes not sorted: %+v", st.Classes)
	}
	blob, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	var decoded LedgerState
	if err := json.Unmarshal(blob, &decoded); err != nil {
		t.Fatal(err)
	}

	fresh := NewLedger()
	fresh.Register("zz", 3)
	fresh.Register("aa", 3)
	fresh.Restore(decoded)
	if got := fresh.ClassTotals("zz"); got.Spent != 2 || got.Confirmed != 1 {
		t.Fatalf("restored zz totals = %+v", got)
	}
	// Restore clears the tick window: full grants again.
	fresh.BeginTick()
	if g := fresh.Grant("aa"); g != 3 {
		t.Fatalf("restored aa grant = %d, want 3", g)
	}
	ba, _ := json.Marshal(fresh.State())
	if string(ba) != string(blob) {
		t.Fatalf("re-serialized state differs:\n%s\n%s", ba, blob)
	}
}
