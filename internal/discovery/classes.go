package discovery

import (
	"fmt"
	"net/netip"
	"time"

	"censysmap/internal/cyclic"
	"censysmap/internal/entity"
)

// allPorts enumerates 1..65535 for the background class.
func allPorts() []uint16 {
	ports := make([]uint16, 65535)
	for i := range ports {
		ports[i] = uint16(i + 1)
	}
	return ports
}

// StandardClasses builds the paper's three scan classes for a universe:
//
//   - priority ports over the whole prefix, one full pass per day;
//   - cloud networks (the first cloudBlocks /24s) on the wider cloud port
//     set, one full pass per day;
//   - background 65K over the whole prefix at backgroundPortsPerIPPerDay
//     random ports per address per day (the paper's 100).
//
// tick is the scheduler quantum the engine will be driven at.
func StandardClasses(prefix netip.Prefix, cloudBlocks int, tick time.Duration, backgroundPortsPerIPPerDay int) ([]ClassConfig, error) {
	if !prefix.Addr().Is4() {
		return nil, fmt.Errorf("discovery: IPv4 prefix required")
	}
	ticksPerDay := int(24 * time.Hour / tick)
	if ticksPerDay < 1 {
		ticksPerDay = 1
	}
	hosts := uint64(1) << (32 - prefix.Bits())

	prioSpace, err := cyclic.NewPrefixSpace(prefix, PriorityPorts())
	if err != nil {
		return nil, err
	}
	classes := []ClassConfig{{
		Name:          "priority",
		Method:        entity.DetectPriorityScan,
		Space:         prioSpace,
		ProbesPerTick: perTick(prioSpace.Size(), ticksPerDay),
		Restart:       true,
	}}

	if cloudBlocks > 0 {
		cloudHosts := uint64(cloudBlocks) * 256
		if cloudHosts > hosts {
			cloudHosts = hosts
		}
		cloudSpace, err := cyclic.NewSpace(prefix.Masked().Addr(), cloudHosts, CloudPorts())
		if err != nil {
			return nil, err
		}
		classes = append(classes, ClassConfig{
			Name:          "cloud",
			Method:        entity.DetectCloudScan,
			Space:         cloudSpace,
			ProbesPerTick: perTick(cloudSpace.Size(), ticksPerDay),
			Restart:       true,
		})
	}

	if backgroundPortsPerIPPerDay > 0 {
		bgSpace, err := cyclic.NewPrefixSpace(prefix, allPorts())
		if err != nil {
			return nil, err
		}
		daily := hosts * uint64(backgroundPortsPerIPPerDay)
		classes = append(classes, ClassConfig{
			Name:          "background65k",
			Method:        entity.DetectBackgroundScan,
			Space:         bgSpace,
			ProbesPerTick: perTick(daily, ticksPerDay),
			Restart:       true,
		})
	}
	return classes, nil
}

func perTick(perDay uint64, ticksPerDay int) int {
	n := perDay / uint64(ticksPerDay)
	if perDay%uint64(ticksPerDay) != 0 {
		n++
	}
	if n < 1 {
		n = 1
	}
	return int(n)
}
