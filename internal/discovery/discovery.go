// Package discovery implements Phase 1 of two-phase scanning (paper §4.1):
// continuous, stateless L4 discovery of potential service locations. It runs
// the paper's three scan classes —
//
//   - Common Ports and Protocols: the most responsive ports plus
//     IANA-assigned ports of interest, covered daily;
//   - Dense, High-Churn Networks: known cloud prefixes on a wide port set,
//     at least daily;
//   - Background 65K: every port on every address, slowly and continuously,
//     feeding the predictive engine and surfacing long-lived services on
//     unusual ports —
//
// from multiple points of presence, with traffic spread evenly across time
// (continuous operation rather than timed runs) and across a pool of source
// addresses. L4-responsive targets are never published: they are candidates
// queued for Phase 2 interrogation.
package discovery

import (
	"fmt"
	"net/netip"
	"time"

	"censysmap/internal/cyclic"
	"censysmap/internal/entity"
	"censysmap/internal/protocols"
	"censysmap/internal/simnet"
	"censysmap/internal/wire"
)

// PoP is a scanning point of presence (paper §4.5).
type PoP struct {
	// Name identifies the PoP, e.g. "chi", "fra", "hkg".
	Name string
	// Country is the vantage point's location (geoblocking input).
	Country string
	// SourceAddr is the address probes originate from (wire mode).
	SourceAddr netip.Addr
}

// DefaultPoPs mirrors the paper's deployment: Chicago, Frankfurt, Hong Kong.
func DefaultPoPs() []PoP {
	return []PoP{
		{Name: "chi", Country: "US", SourceAddr: netip.MustParseAddr("192.0.2.1")},
		{Name: "fra", Country: "DE", SourceAddr: netip.MustParseAddr("192.0.2.2")},
		{Name: "hkg", Country: "HK", SourceAddr: netip.MustParseAddr("192.0.2.3")},
	}
}

// Candidate is a potential service location discovered in Phase 1.
type Candidate struct {
	Addr      netip.Addr
	Port      uint16
	Transport entity.Transport
	// Method records which scan class (or engine) produced the candidate.
	Method entity.DetectionMethod
	// PoP is the vantage point that saw the response.
	PoP string
	// Time is when the response was observed.
	Time time.Time
	// UDPProtocol names the protocol whose probe elicited a UDP reply.
	UDPProtocol string
}

// ClassConfig sizes one scan class.
type ClassConfig struct {
	// Name labels the class in stats.
	Name string
	// Method tags candidates found by this class.
	Method entity.DetectionMethod
	// Space is the (address × port) target space the class covers.
	Space *cyclic.Space
	// ProbesPerTick is the class's per-tick probe budget (bandwidth
	// allocation).
	ProbesPerTick int
	// Restart restarts coverage from a fresh pseudorandom order when the
	// space is exhausted (continuous scanning).
	Restart bool
}

// Config assembles a discovery engine.
type Config struct {
	// Scanner identifies this engine to networks (blocking model).
	Scanner simnet.Scanner
	// PoPs are the vantage points; probes rotate across them.
	PoPs []PoP
	// Classes are the scan classes to run.
	Classes []ClassConfig
	// Excluded prefixes are never probed (opt-out list, paper §8/App. D).
	Excluded []netip.Prefix
	// Seed drives iteration order.
	Seed uint64
	// Ledger, when set, accounts every probe target spent and every
	// L4-responsive answer per scan class, and caps each class's per-tick
	// spend at its registered grant. Nil leaves budgets implicit in
	// ProbesPerTick exactly as before.
	Ledger *Ledger
	// WirePackets routes probes through full packet encode/decode (the
	// userspace network stack) instead of the fast path. Identical
	// semantics, ~5x the CPU; used where wire fidelity matters.
	WirePackets bool
	// Backoff configures adaptive backoff and scanner rotation against
	// networks that block scanners (see adaptive.go). Zero value disables.
	Backoff BackoffPolicy
}

// Stats counts engine activity.
type Stats struct {
	ProbesSent     uint64
	OpenResponses  uint64
	ClosedResponse uint64
	Dropped        uint64
	Excluded       uint64
	CyclesComplete uint64
	// Adaptive-backoff accounting (zero unless Config.Backoff is enabled).
	Deferred  uint64 // probes skipped because their /24 was backed off
	Backoffs  uint64 // backoff events triggered
	Rotations uint64 // scanner identity rotations
}

// Engine drives discovery scanning over the synthetic Internet.
type Engine struct {
	cfg     Config
	net     *simnet.Internet
	classes []*classState
	prober  *wire.Prober
	popIdx  int
	stats   Stats
	// udpProbes caches protocol-specific UDP payloads by port.
	udpProbes map[uint16]udpProbe

	// Adaptive-backoff state (see adaptive.go); empty unless cfg.Backoff
	// is enabled.
	tickNo        uint64
	backoff       map[netip.Addr]*netBackoff
	answered      map[netip.Addr]bool // addresses that have ever answered
	offensesTotal uint64
	rotations     int
}

type udpProbe struct {
	protocol string
	payload  []byte
}

type classState struct {
	cfg  ClassConfig
	iter *cyclic.Iterator
	gen  uint64 // reseed counter across restarts
}

// New creates a discovery engine.
func New(cfg Config, net *simnet.Internet) (*Engine, error) {
	if len(cfg.PoPs) == 0 {
		return nil, fmt.Errorf("discovery: at least one PoP required")
	}
	e := &Engine{
		cfg:       cfg,
		net:       net,
		prober:    wire.NewProber(cfg.Seed, 40000),
		udpProbes: make(map[uint16]udpProbe),
	}
	for _, cc := range cfg.Classes {
		if cc.Space == nil || cc.ProbesPerTick <= 0 {
			return nil, fmt.Errorf("discovery: class %q misconfigured", cc.Name)
		}
		it, err := cyclic.NewIterator(cc.Space, cfg.Seed^strSeed(cc.Name))
		if err != nil {
			return nil, fmt.Errorf("discovery: class %q: %w", cc.Name, err)
		}
		e.classes = append(e.classes, &classState{cfg: cc, iter: it})
	}
	// Precompute UDP probes for ports whose conventional protocol is
	// UDP-based.
	for _, p := range protocols.All() {
		if p.Transport != entity.UDP {
			continue
		}
		payload := protocols.FirstProbe(p.Name)
		if payload == nil {
			continue
		}
		for _, port := range p.DefaultPorts {
			e.udpProbes[port] = udpProbe{protocol: p.Name, payload: payload}
		}
	}
	return e, nil
}

func strSeed(s string) uint64 {
	h := uint64(1469598103934665603)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// SetExcluded replaces the engine's opt-out list (dynamic exclusions).
func (e *Engine) SetExcluded(prefixes []netip.Prefix) {
	e.cfg.Excluded = append([]netip.Prefix(nil), prefixes...)
}

// excluded reports whether addr is in the opt-out list.
func (e *Engine) excluded(addr netip.Addr) bool {
	for _, p := range e.cfg.Excluded {
		if p.Contains(addr) {
			return true
		}
	}
	return false
}

// Tick runs one scheduling quantum: each class spends its probe budget, and
// responsive targets are passed to emit. Probes rotate over PoPs so traffic
// is spread across vantage points.
func (e *Engine) Tick(now time.Time, emit func(Candidate)) {
	if e.cfg.Backoff.Enabled() {
		e.tickNo++
	}
	if e.cfg.Ledger != nil {
		e.cfg.Ledger.BeginTick()
	}
	for _, cs := range e.classes {
		budget := cs.cfg.ProbesPerTick
		if e.cfg.Ledger != nil {
			if g := e.cfg.Ledger.Grant(cs.cfg.Name); g < budget {
				budget = g
			}
		}
		// Deferred draws (backed-off /24s) do not consume the budget: the
		// slot is re-spent on the next target in the cycle, so backing off
		// from hostile networks degrades coverage only there instead of
		// starving the whole class. Draws are capped at 4x the budget so a
		// tick stays bounded even when most of the space is backed off.
		// With backoff disabled nothing is ever deferred and the loop is
		// byte-identical to the legacy schedule.
		maxDraws := budget * 4
		for spent, draws := 0, 0; spent < budget && draws < maxDraws; draws++ {
			addr, port, ok := cs.iter.Next()
			if !ok {
				e.stats.CyclesComplete++
				if !cs.cfg.Restart {
					break
				}
				cs.gen++
				it, err := cyclic.NewIterator(cs.cfg.Space, e.cfg.Seed^strSeed(cs.cfg.Name)^cs.gen)
				if err != nil {
					break
				}
				cs.iter = it
				addr, port, ok = cs.iter.Next()
				if !ok {
					break
				}
			}
			if e.excluded(addr) {
				e.stats.Excluded++
				spent++
				continue
			}
			if e.deferred(addr) {
				e.stats.Deferred++
				continue
			}
			e.probe(now, cs.cfg.Name, cs.cfg.Method, addr, port, emit)
			spent++
		}
	}
}

// probe sends one TCP SYN (plus a protocol-specific UDP probe when the port
// conventionally carries a UDP protocol) from the next PoP in rotation. The
// ledger accounts the target once regardless of how many wire probes it
// takes, and confirms it at most once.
func (e *Engine) probe(now time.Time, class string, method entity.DetectionMethod, addr netip.Addr, port uint16, emit func(Candidate)) {
	pop := e.cfg.PoPs[e.popIdx%len(e.cfg.PoPs)]
	e.popIdx++
	sc := e.cfg.Scanner
	sc.ID = e.scannerID()
	sc.Country = pop.Country

	if e.cfg.Ledger != nil {
		e.cfg.Ledger.Spend(class)
	}
	confirmed := false
	confirm := func() {
		if !confirmed && e.cfg.Ledger != nil {
			e.cfg.Ledger.Confirm(class)
		}
		confirmed = true
	}

	e.stats.ProbesSent++
	var outcome simnet.Outcome
	if e.cfg.WirePackets {
		outcome = e.wireProbeTCP(sc, pop, addr, port)
	} else {
		outcome = e.net.ProbeTCP(sc, addr, port)
	}
	switch outcome {
	case simnet.Open:
		e.stats.OpenResponses++
		confirm()
		emit(Candidate{Addr: addr, Port: port, Transport: entity.TCP,
			Method: method, PoP: pop.Name, Time: now})
	case simnet.Closed:
		e.stats.ClosedResponse++
	default:
		e.stats.Dropped++
	}
	e.noteOutcome(addr, outcome == simnet.Dropped)

	if up, ok := e.udpProbes[port]; ok {
		e.stats.ProbesSent++
		var resp []byte
		var uout simnet.Outcome
		if e.cfg.WirePackets {
			resp, uout = e.wireProbeUDP(sc, pop, addr, port, up.payload)
		} else {
			resp, uout = e.net.ProbeUDP(sc, addr, port, up.payload)
		}
		if uout == simnet.Open && len(resp) > 0 {
			e.stats.OpenResponses++
			confirm()
			emit(Candidate{Addr: addr, Port: port, Transport: entity.UDP,
				Method: method, PoP: pop.Name, Time: now, UDPProtocol: up.protocol})
		} else {
			e.stats.Dropped++
		}
	}
}

// wireProbeTCP sends the probe as a crafted SYN packet through the full
// userspace network stack.
func (e *Engine) wireProbeTCP(sc simnet.Scanner, pop PoP, addr netip.Addr, port uint16) simnet.Outcome {
	pkt, err := e.prober.SYN(pop.SourceAddr, addr, port)
	if err != nil {
		return simnet.Dropped
	}
	resp := e.net.HandlePacket(sc, pkt)
	if resp == nil {
		return simnet.Dropped
	}
	parsed, ok := e.prober.ParseResponse(pop.SourceAddr, resp)
	if !ok {
		return simnet.Dropped
	}
	switch parsed.Kind {
	case wire.ResponseOpen:
		return simnet.Open
	case wire.ResponseClosed:
		return simnet.Closed
	}
	return simnet.Dropped
}

// wireProbeUDP sends the probe as a crafted UDP packet.
func (e *Engine) wireProbeUDP(sc simnet.Scanner, pop PoP, addr netip.Addr, port uint16, payload []byte) ([]byte, simnet.Outcome) {
	pkt, err := e.prober.UDPProbe(pop.SourceAddr, addr, port, payload)
	if err != nil {
		return nil, simnet.Dropped
	}
	resp := e.net.HandlePacket(sc, pkt)
	if resp == nil {
		return nil, simnet.Dropped
	}
	parsed, ok := e.prober.ParseResponse(pop.SourceAddr, resp)
	if !ok || parsed.Kind != wire.ResponseUDPReply {
		return nil, simnet.Dropped
	}
	return parsed.Payload, simnet.Open
}

// Stats returns cumulative counters.
func (e *Engine) Stats() Stats { return e.stats }

// ClassPosition is one scan class's serializable coverage position.
type ClassPosition struct {
	Name  string            `json:"name"`
	Gen   uint64            `json:"gen"`
	Cycle cyclic.CycleState `json:"cycle"`
}

// State is the engine's serializable position: PoP rotation, counters, and
// each class's place in its coverage cycle. The cycles themselves re-derive
// from the engine seed, so a restored engine probes the exact targets the
// original would have probed next.
type State struct {
	PopIdx  int             `json:"pop_idx"`
	Stats   Stats           `json:"stats"`
	Classes []ClassPosition `json:"classes"`
	Ledger  LedgerState     `json:"ledger,omitzero"`
	// Adaptive-backoff position (empty unless Config.Backoff is enabled).
	TickNo    uint64            `json:"tick_no,omitempty"`
	Offenses  uint64            `json:"offenses,omitempty"`
	Rotations int               `json:"rotations,omitempty"`
	Backoff   []NetBackoffState `json:"backoff,omitempty"`
	Answered  []netip.Addr      `json:"answered,omitempty"`
}

// State captures the engine's position for checkpointing.
func (e *Engine) State() State {
	st := State{PopIdx: e.popIdx, Stats: e.stats,
		TickNo: e.tickNo, Offenses: e.offensesTotal, Rotations: e.rotations,
		Backoff: e.backoffState(), Answered: e.answeredState()}
	for _, cs := range e.classes {
		st.Classes = append(st.Classes, ClassPosition{
			Name: cs.cfg.Name, Gen: cs.gen, Cycle: cs.iter.State()})
	}
	if e.cfg.Ledger != nil {
		st.Ledger = e.cfg.Ledger.State()
	}
	return st
}

// Restore repositions an engine built with the same Config to a captured
// state. Classes are matched by name; unknown names are ignored.
func (e *Engine) Restore(st State) error {
	e.popIdx = st.PopIdx
	e.stats = st.Stats
	e.tickNo = st.TickNo
	e.offensesTotal = st.Offenses
	e.rotations = st.Rotations
	e.restoreBackoff(st.Backoff)
	e.restoreAnswered(st.Answered)
	for _, cp := range st.Classes {
		for _, cs := range e.classes {
			if cs.cfg.Name != cp.Name {
				continue
			}
			if cp.Gen != cs.gen {
				// The class restarted its coverage cycle with a reseeded
				// order; rebuild the same generation's iterator.
				it, err := cyclic.NewIterator(cs.cfg.Space, e.cfg.Seed^strSeed(cs.cfg.Name)^cp.Gen)
				if err != nil {
					return fmt.Errorf("discovery: restore class %q: %w", cp.Name, err)
				}
				cs.iter = it
				cs.gen = cp.Gen
			}
			cs.iter.Restore(cp.Cycle)
		}
	}
	if e.cfg.Ledger != nil {
		e.cfg.Ledger.Restore(st.Ledger)
	}
	return nil
}

// PriorityPorts returns the ~top responsive ports plus IANA-assigned ports
// of interest that the Common Ports class covers daily (a scaled-down
// version of the paper's ~200).
func PriorityPorts() []uint16 {
	return []uint16{
		80, 443, 22, 7547, 21, 25, 8080, 3389, 53, 23,
		5060, 587, 3306, 8443, 123, 161, 8000, 5900, 2222, 6379,
		445, 1883, 8888, 2082, 110, 143, 465, 993, 995, 5901,
		// IANA-assigned protocols of interest (incl. ICS):
		502, 102, 20000, 47808, 9600, 1911, 4911, 44818, 10001, 2455,
		2404, 18245, 789, 1962, 20547, 5094, 17185,
		81, 8081, 9000, 10000,
	}
}

// CloudPorts returns the wider port set used on dense cloud networks
// (scaled-down version of the paper's 300).
func CloudPorts() []uint16 {
	ports := append([]uint16(nil), PriorityPorts()...)
	extra := []uint16{82, 8089, 9090, 49152, 60000, 500, 3000, 5000, 5432,
		27017, 9200, 11211, 4443, 8834, 9443, 8500, 2379, 6443, 10250, 30000}
	return append(ports, extra...)
}
