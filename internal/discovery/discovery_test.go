package discovery

import (
	"net/netip"
	"testing"
	"time"

	"censysmap/internal/cyclic"
	"censysmap/internal/entity"
	"censysmap/internal/simclock"
	"censysmap/internal/simnet"
)

func quietConfig() simnet.Config {
	cfg := simnet.DefaultConfig()
	cfg.Prefix = netip.MustParsePrefix("10.0.0.0/22")
	cfg.CloudBlocks = 1
	cfg.WebProperties = 10
	cfg.BaseLoss = 0
	cfg.OutageRate = 0
	cfg.GeoblockRate = 0
	return cfg
}

func censysLike() simnet.Scanner {
	return simnet.Scanner{ID: "censys", SourceIPs: 256, Country: "US"}
}

func newEngine(t *testing.T, net *simnet.Internet, classes []ClassConfig, wirePackets bool) *Engine {
	t.Helper()
	e, err := New(Config{
		Scanner:     censysLike(),
		PoPs:        DefaultPoPs(),
		Classes:     classes,
		Seed:        7,
		WirePackets: wirePackets,
	}, net)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func priorityClass(t *testing.T, prefix netip.Prefix, budget int) ClassConfig {
	t.Helper()
	space, err := cyclic.NewPrefixSpace(prefix, PriorityPorts())
	if err != nil {
		t.Fatal(err)
	}
	return ClassConfig{Name: "priority", Method: entity.DetectPriorityScan,
		Space: space, ProbesPerTick: budget, Restart: true}
}

func TestDiscoveryFindsLiveServices(t *testing.T) {
	clk := simclock.New()
	net := simnet.New(quietConfig(), clk)
	cls := priorityClass(t, quietConfig().Prefix, 1<<20)
	e := newEngine(t, net, []ClassConfig{cls}, false)

	found := map[[2]any]bool{}
	e.Tick(clk.Now(), func(c Candidate) {
		found[[2]any{c.Addr, c.Port}] = true
	})

	// Every live TCP service on a priority port must be discovered in a
	// full lossless pass.
	missed := 0
	total := 0
	prio := map[uint16]bool{}
	for _, p := range PriorityPorts() {
		prio[p] = true
	}
	for _, s := range net.LiveServices(clk.Now(), false) {
		if s.Transport != entity.TCP || !prio[s.Port] {
			continue
		}
		total++
		if !found[[2]any{s.Addr, s.Port}] {
			missed++
		}
	}
	if total == 0 {
		t.Fatal("no services on priority ports in universe")
	}
	if missed != 0 {
		t.Fatalf("missed %d/%d services in a lossless full pass", missed, total)
	}
}

func TestDiscoveryEmitsUDPCandidates(t *testing.T) {
	clk := simclock.New()
	net := simnet.New(quietConfig(), clk)
	cls := priorityClass(t, quietConfig().Prefix, 1<<20)
	e := newEngine(t, net, []ClassConfig{cls}, false)

	udp := 0
	e.Tick(clk.Now(), func(c Candidate) {
		if c.Transport == entity.UDP {
			udp++
			if c.UDPProtocol == "" {
				t.Fatal("UDP candidate without protocol")
			}
		}
	})
	wantUDP := 0
	for _, s := range net.LiveServices(clk.Now(), false) {
		if s.Transport == entity.UDP {
			wantUDP++
		}
	}
	if wantUDP == 0 {
		t.Skip("no UDP services generated in small universe")
	}
	if udp == 0 {
		t.Fatal("no UDP candidates discovered")
	}
}

func TestWirePathMatchesFastPath(t *testing.T) {
	cfgA := quietConfig()
	clkA := simclock.New()
	netA := simnet.New(cfgA, clkA)
	eA := newEngine(t, netA, []ClassConfig{priorityClass(t, cfgA.Prefix, 1<<20)}, false)

	clkB := simclock.New()
	netB := simnet.New(cfgA, clkB)
	eB := newEngine(t, netB, []ClassConfig{priorityClass(t, cfgA.Prefix, 1<<20)}, true)

	fast := map[Candidate]bool{}
	eA.Tick(clkA.Now(), func(c Candidate) { fast[c] = true })
	wirePath := map[Candidate]bool{}
	eB.Tick(clkB.Now(), func(c Candidate) { wirePath[c] = true })

	if len(fast) == 0 || len(fast) != len(wirePath) {
		t.Fatalf("fast path found %d, wire path %d", len(fast), len(wirePath))
	}
	for c := range fast {
		if !wirePath[c] {
			t.Fatalf("wire path missed %+v", c)
		}
	}
}

func TestExclusionListHonored(t *testing.T) {
	clk := simclock.New()
	cfg := quietConfig()
	net := simnet.New(cfg, clk)
	excluded := netip.MustParsePrefix("10.0.1.0/24")
	e, err := New(Config{
		Scanner:  censysLike(),
		PoPs:     DefaultPoPs(),
		Classes:  []ClassConfig{priorityClass(t, cfg.Prefix, 1<<20)},
		Excluded: []netip.Prefix{excluded},
		Seed:     7,
	}, net)
	if err != nil {
		t.Fatal(err)
	}
	e.Tick(clk.Now(), func(c Candidate) {
		if excluded.Contains(c.Addr) {
			t.Fatalf("excluded address %v probed", c.Addr)
		}
	})
	if e.Stats().Excluded == 0 {
		t.Fatal("no probes skipped for excluded prefix")
	}
}

func TestContinuousRestartCoversAgain(t *testing.T) {
	clk := simclock.New()
	cfg := quietConfig()
	net := simnet.New(cfg, clk)
	space, _ := cyclic.NewPrefixSpace(cfg.Prefix, []uint16{80})
	cls := ClassConfig{Name: "tiny", Method: entity.DetectPriorityScan,
		Space: space, ProbesPerTick: int(space.Size()) + 10, Restart: true}
	e := newEngine(t, net, []ClassConfig{cls}, false)
	e.Tick(clk.Now(), func(Candidate) {})
	if e.Stats().CyclesComplete == 0 {
		t.Fatal("cycle did not complete")
	}
	sent := e.Stats().ProbesSent
	e.Tick(clk.Now(), func(Candidate) {})
	if e.Stats().ProbesSent <= sent {
		t.Fatal("engine stopped probing after cycle completion")
	}
}

func TestProbesRotateAcrossPoPs(t *testing.T) {
	clk := simclock.New()
	cfg := quietConfig()
	net := simnet.New(cfg, clk)
	e := newEngine(t, net, []ClassConfig{priorityClass(t, cfg.Prefix, 1<<20)}, false)
	pops := map[string]int{}
	e.Tick(clk.Now(), func(c Candidate) { pops[c.PoP]++ })
	if len(pops) != 3 {
		t.Fatalf("candidates from %d PoPs, want 3: %v", len(pops), pops)
	}
}

func TestStandardClassesBudgets(t *testing.T) {
	prefix := netip.MustParsePrefix("10.0.0.0/20")
	classes, err := StandardClasses(prefix, 2, time.Hour, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(classes) != 3 {
		t.Fatalf("classes = %d, want 3", len(classes))
	}
	byName := map[string]ClassConfig{}
	for _, c := range classes {
		byName[c.Name] = c
	}
	prio := byName["priority"]
	// A day's ticks must cover the whole priority space.
	if uint64(prio.ProbesPerTick)*24 < prio.Space.Size() {
		t.Fatalf("priority budget %d/tick cannot cover %d targets daily",
			prio.ProbesPerTick, prio.Space.Size())
	}
	bg := byName["background65k"]
	hosts := uint64(1) << 12
	wantDaily := hosts * 100
	gotDaily := uint64(bg.ProbesPerTick) * 24
	if gotDaily < wantDaily || gotDaily > wantDaily+24 {
		t.Fatalf("background daily budget = %d, want ~%d", gotDaily, wantDaily)
	}
	if bg.Space.Size() != hosts*65535 {
		t.Fatalf("background space = %d", bg.Space.Size())
	}
	cloud := byName["cloud"]
	if cloud.Space.Hosts() != 512 {
		t.Fatalf("cloud hosts = %d, want 512", cloud.Space.Hosts())
	}
}

func TestStandardClassesErrors(t *testing.T) {
	if _, err := StandardClasses(netip.MustParsePrefix("::/64"), 0, time.Hour, 0); err == nil {
		t.Fatal("IPv6 prefix accepted")
	}
}

func TestNewValidation(t *testing.T) {
	clk := simclock.New()
	net := simnet.New(quietConfig(), clk)
	if _, err := New(Config{Scanner: censysLike()}, net); err == nil {
		t.Fatal("engine without PoPs accepted")
	}
	if _, err := New(Config{Scanner: censysLike(), PoPs: DefaultPoPs(),
		Classes: []ClassConfig{{Name: "bad"}}}, net); err == nil {
		t.Fatal("misconfigured class accepted")
	}
}

func TestPriorityPortsIncludeICS(t *testing.T) {
	ports := map[uint16]bool{}
	for _, p := range PriorityPorts() {
		ports[p] = true
	}
	for _, ics := range []uint16{502, 102, 20000, 47808} {
		if !ports[ics] {
			t.Fatalf("ICS port %d missing from priority scan", ics)
		}
	}
}
