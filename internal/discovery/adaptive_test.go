package discovery

import (
	"encoding/json"
	"net/netip"
	"testing"
	"time"

	"censysmap/internal/simclock"
	"censysmap/internal/simnet"
)

func detectorConfig() simnet.Config {
	cfg := quietConfig()
	cfg.Adversary = simnet.AdversaryConfig{
		Seed:              5,
		DetectorRate:      1.0, // every /24 watches for scanners
		DetectorThreshold: 30,
		DetectorBaseBlock: 12 * time.Hour,
	}
	return cfg
}

func adaptiveEngine(t *testing.T, net *simnet.Internet, policy BackoffPolicy) *Engine {
	t.Helper()
	e, err := New(Config{
		Scanner: censysLike(),
		PoPs:    DefaultPoPs(),
		Classes: []ClassConfig{priorityClass(t, detectorConfig().Prefix, 4000)},
		Seed:    7,
		Backoff: policy,
	}, net)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

var testPolicy = BackoffPolicy{
	StreakThreshold: 20,
	BaseTicks:       4,
	MaxTicks:        64,
	RotateAfter:     3,
	MaxRotations:    4,
}

func TestBackoffEngagesUnderDetectors(t *testing.T) {
	clk := simclock.New()
	net := simnet.New(detectorConfig(), clk)
	e := adaptiveEngine(t, net, testPolicy)

	for i := 0; i < 40; i++ {
		e.Tick(clk.Now(), func(Candidate) {})
		clk.Advance(time.Hour)
	}
	st := e.Stats()
	if st.Backoffs == 0 {
		t.Fatal("detectors blocked the scanner but no backoff ever triggered")
	}
	if st.Deferred == 0 {
		t.Fatal("backoffs triggered but no probe was ever deferred")
	}
	if st.Rotations == 0 || e.Rotations() == 0 {
		t.Fatal("enough offenses accumulated but the scanner never rotated identity")
	}
	if e.ActiveBackoffs() == 0 {
		t.Fatal("no network currently backed off after sustained blocking")
	}
	// Detectors actually fired against the scanner (any identity); active
	// blocks may already have expired by now, but the event count is
	// cumulative.
	if net.DetectorBlockEvents("censys") == 0 {
		t.Fatal("no detector block ever fired against any censys identity")
	}
	// Rotation shows up at the network as fresh identities with their own
	// block history.
	if net.DetectorBlockEvents("censys+r") == 0 {
		t.Fatal("rotated identities never drew a detector block of their own")
	}
}

func TestBackoffDisabledLeavesStatsUntouched(t *testing.T) {
	clk := simclock.New()
	net := simnet.New(detectorConfig(), clk)
	e := adaptiveEngine(t, net, BackoffPolicy{})

	for i := 0; i < 10; i++ {
		e.Tick(clk.Now(), func(Candidate) {})
		clk.Advance(time.Hour)
	}
	st := e.Stats()
	if st.Deferred != 0 || st.Backoffs != 0 || st.Rotations != 0 {
		t.Fatalf("disabled policy produced adaptive stats: %+v", st)
	}
	// And the engine state carries no adaptive baggage.
	raw, err := json.Marshal(e.State())
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]json.RawMessage
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"tick_no", "offenses", "rotations", "backoff"} {
		if _, ok := m[key]; ok {
			t.Fatalf("disabled policy serialized %q in state: %s", key, raw)
		}
	}
}

// A kill/resume mid-run must land on the exact same schedule: same stats,
// same deferred probes, same rotation point.
func TestBackoffStateSurvivesRestore(t *testing.T) {
	run := func(splitAt int) (Stats, string) {
		clk := simclock.New()
		net := simnet.New(detectorConfig(), clk)
		e := adaptiveEngine(t, net, testPolicy)
		for i := 0; i < 30; i++ {
			if i == splitAt {
				// Serialize through JSON like a real checkpoint does.
				raw, err := json.Marshal(e.State())
				if err != nil {
					t.Fatal(err)
				}
				var st State
				if err := json.Unmarshal(raw, &st); err != nil {
					t.Fatal(err)
				}
				e2 := adaptiveEngine(t, net, testPolicy)
				if err := e2.Restore(st); err != nil {
					t.Fatal(err)
				}
				e = e2
			}
			e.Tick(clk.Now(), func(Candidate) {})
			clk.Advance(time.Hour)
		}
		finalState, err := json.Marshal(e.State())
		if err != nil {
			t.Fatal(err)
		}
		return e.Stats(), string(finalState)
	}
	statsA, stateA := run(-1) // never restored
	statsB, stateB := run(13) // killed and resumed at tick 13
	if statsA != statsB {
		t.Fatalf("stats diverge across kill/resume:\n  %+v\n  %+v", statsA, statsB)
	}
	if stateA != stateB {
		t.Fatalf("state diverges across kill/resume:\n  %s\n  %s", stateA, stateB)
	}
}

func TestNet24(t *testing.T) {
	got := net24(netip.MustParseAddr("10.1.2.3"))
	if got != netip.MustParseAddr("10.1.2.0") {
		t.Fatalf("net24 = %v", got)
	}
}
