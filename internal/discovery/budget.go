package discovery

import (
	"sort"
	"sync"
)

// Ledger class names for probe classes that live outside the discovery
// engine but share its per-tick budget.
const (
	// ClassSeed accounts the one-time GPS seed scan (spent before the first
	// tick; it has no per-tick allocation).
	ClassSeed = "seed"
	// ClassPredict is the predictive engine's per-tick allocation. Core
	// carves it out of the background class, so predictions displace
	// exhaustive probes rather than adding to the footprint.
	ClassPredict = "predict"
)

// Ledger is the explicit probe-budget ledger: every scan class — the
// discovery classes, the predictive engine, the seed scan — registers a
// per-tick allocation and accounts each probe target it spends and each L4
// confirmation it gets back. The difference is the class's wasted probes,
// and confirmed/spent is its budget efficiency — the number the
// exhaustive-vs-predictive evaluation (make predict-diff) compares.
//
// Grants are how predictions compete with exhaustive scanning for a shared
// total: a class may spend at most its own allocation per tick AND at most
// what the shared per-tick total (the sum of all allocations) has left. The
// tick phases run in a fixed order, so grant arithmetic is deterministic.
//
// Units are probe targets (one discovery target may emit a TCP SYN plus a
// protocol UDP probe; it spends once), matching ClassConfig.ProbesPerTick.
//
// All methods lock: the scan path is serial, but telemetry collection may
// read totals concurrently with a live run.
type Ledger struct {
	mu        sync.Mutex
	order     []string
	alloc     map[string]int
	totalCap  int
	tickSpent map[string]int
	tickTotal int
	spent     map[string]uint64
	confirmed map[string]uint64
}

// NewLedger creates an empty ledger.
func NewLedger() *Ledger {
	return &Ledger{
		alloc:     make(map[string]int),
		tickSpent: make(map[string]int),
		spent:     make(map[string]uint64),
		confirmed: make(map[string]uint64),
	}
}

// Register adds a class with its per-tick allocation. Classes must be
// registered before the first tick; re-registering replaces the allocation.
func (l *Ledger) Register(class string, perTick int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if old, ok := l.alloc[class]; ok {
		l.totalCap += perTick - old
		l.alloc[class] = perTick
		return
	}
	l.order = append(l.order, class)
	l.alloc[class] = perTick
	l.totalCap += perTick
}

// Classes returns the registered class names in registration order.
func (l *Ledger) Classes() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]string(nil), l.order...)
}

// BeginTick resets the per-tick spend; cumulative totals carry on.
func (l *Ledger) BeginTick() {
	l.mu.Lock()
	defer l.mu.Unlock()
	clear(l.tickSpent)
	l.tickTotal = 0
}

// Grant reports how many probe targets the class may still spend this tick:
// its own remaining allocation, capped by what the shared per-tick total has
// left. Unregistered classes get nothing.
func (l *Ledger) Grant(class string) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	alloc, ok := l.alloc[class]
	if !ok {
		return 0
	}
	g := alloc - l.tickSpent[class]
	if rem := l.totalCap - l.tickTotal; rem < g {
		g = rem
	}
	if g < 0 {
		return 0
	}
	return g
}

// Spend accounts one probe target against the class.
func (l *Ledger) Spend(class string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.tickSpent[class]++
	l.tickTotal++
	l.spent[class]++
}

// Confirm accounts one L4-responsive answer for the class.
func (l *Ledger) Confirm(class string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.confirmed[class]++
}

// ClassTotals is one class's cumulative accounting.
type ClassTotals struct {
	Class     string `json:"class"`
	Spent     uint64 `json:"spent"`
	Confirmed uint64 `json:"confirmed"`
}

// Wasted is the class's probes that bought nothing.
func (ct ClassTotals) Wasted() uint64 {
	if ct.Confirmed > ct.Spent {
		return 0
	}
	return ct.Spent - ct.Confirmed
}

// Efficiency is confirmed/spent (0 when nothing was spent).
func (ct ClassTotals) Efficiency() float64 {
	if ct.Spent == 0 {
		return 0
	}
	return float64(ct.Confirmed) / float64(ct.Spent)
}

// Totals returns every registered class's cumulative accounting, sorted by
// class name.
func (l *Ledger) Totals() []ClassTotals {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]ClassTotals, 0, len(l.order))
	for _, c := range l.order {
		out = append(out, ClassTotals{Class: c, Spent: l.spent[c], Confirmed: l.confirmed[c]})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Class < out[j].Class })
	return out
}

// ClassTotals returns one class's cumulative accounting.
func (l *Ledger) ClassTotals(class string) ClassTotals {
	l.mu.Lock()
	defer l.mu.Unlock()
	return ClassTotals{Class: class, Spent: l.spent[class], Confirmed: l.confirmed[class]}
}

// TotalSpent sums cumulative spend across classes.
func (l *Ledger) TotalSpent() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	var n uint64
	for _, c := range l.order {
		n += l.spent[c]
	}
	return n
}

// LedgerState is the ledger's serializable cumulative accounting (per-tick
// state is always empty at a tick-boundary checkpoint).
type LedgerState struct {
	Classes []ClassTotals `json:"classes,omitempty"`
}

// State captures cumulative totals for checkpointing.
func (l *Ledger) State() LedgerState {
	return LedgerState{Classes: l.Totals()}
}

// Restore replaces cumulative totals with a captured state. Allocations are
// configuration, not state: classes must already be registered.
func (l *Ledger) Restore(st LedgerState) {
	l.mu.Lock()
	defer l.mu.Unlock()
	clear(l.spent)
	clear(l.confirmed)
	for _, ct := range st.Classes {
		l.spent[ct.Class] = ct.Spent
		l.confirmed[ct.Class] = ct.Confirmed
	}
	clear(l.tickSpent)
	l.tickTotal = 0
}
