// Adaptive scanning: how Phase 1 degrades gracefully when networks fight
// back. Networks running scan detection (simnet.AdversaryConfig) block
// scanners with escalating durations; an engine that keeps hammering a
// blocking /24 wastes its probe budget and extends its own blocks. The
// BackoffPolicy gives the engine the counterpart behavior: track per-/24
// consecutive-drop streaks, back off exponentially from networks that look
// like they are blocking us, and rotate the scanner identity once enough
// networks have turned hostile (source-pool rotation, paper §4.1/§4.5).
//
// Everything here runs on the serial discovery path, so the schedule —
// which probes are deferred, when rotation happens — is a pure function of
// the seed and configuration, independent of worker/shard layout. All state
// is serialized in State and survives kill/resume bit-identically.

package discovery

import (
	"net/netip"
	"sort"
	"strconv"
)

// BackoffPolicy configures adaptive backoff and scanner rotation. The zero
// value disables the feature entirely (legacy behavior, zero extra state).
type BackoffPolicy struct {
	// StreakThreshold is how many consecutive dropped TCP probes into one
	// /24 look like blocking. 0 disables the policy.
	StreakThreshold int
	// BaseTicks is the first backoff length in ticks (default 8); each
	// repeat offense doubles it up to MaxTicks (default 512).
	BaseTicks int
	MaxTicks  int
	// RotateAfter rotates the scanner identity after every RotateAfter
	// backoff events (fresh blocking counters at detectors, modeling a new
	// source pool). 0 disables rotation.
	RotateAfter int
	// MaxRotations bounds identity rotation (default 8).
	MaxRotations int
}

// Enabled reports whether adaptive backoff is configured.
func (p BackoffPolicy) Enabled() bool { return p.StreakThreshold > 0 }

func (p BackoffPolicy) baseTicks() uint64 {
	if p.BaseTicks > 0 {
		return uint64(p.BaseTicks)
	}
	return 8
}

func (p BackoffPolicy) maxTicks() uint64 {
	if p.MaxTicks > 0 {
		return uint64(p.MaxTicks)
	}
	return 512
}

func (p BackoffPolicy) maxRotations() int {
	if p.MaxRotations > 0 {
		return p.MaxRotations
	}
	return 8
}

// netBackoff is the per-/24 adaptive state.
type netBackoff struct {
	streak   int    // consecutive dropped probes to known-responsive addresses
	until    uint64 // tick number the backoff lasts through (exclusive)
	offenses int    // how many times this network triggered a backoff
}

// scannerID returns the engine's current identity: the configured scanner ID
// plus a rotation suffix once identities have been rotated.
func (e *Engine) scannerID() string {
	if e.rotations == 0 {
		return e.cfg.Scanner.ID
	}
	return e.cfg.Scanner.ID + "+r" + strconv.Itoa(e.rotations)
}

// deferred reports whether probes into addr's /24 are currently backed off.
func (e *Engine) deferred(addr netip.Addr) bool {
	if !e.cfg.Backoff.Enabled() || len(e.backoff) == 0 {
		return false
	}
	nb := e.backoff[net24(addr)]
	return nb != nil && nb.until > e.tickNo
}

// noteOutcome feeds the per-/24 streak tracker with a TCP probe outcome.
// Only drops on addresses that have answered before (Open or Closed) extend
// a streak: known-live hosts suddenly going dark en masse is how blocking
// looks from outside, while silence from never-responsive space is just the
// mostly-empty Internet — counting it would back discovery off of every
// sparse /24. Any answer from the /24 proves the path works and resets the
// streak. (UDP silence is ambiguous and never counted.)
func (e *Engine) noteOutcome(addr netip.Addr, dropped bool) {
	if !e.cfg.Backoff.Enabled() {
		return
	}
	key := net24(addr)
	nb := e.backoff[key]
	if !dropped {
		if e.answered == nil {
			e.answered = make(map[netip.Addr]bool)
		}
		e.answered[addr] = true
		if nb != nil {
			nb.streak = 0
		}
		return
	}
	if !e.answered[addr] {
		return
	}
	if nb == nil {
		nb = &netBackoff{}
		if e.backoff == nil {
			e.backoff = make(map[netip.Addr]*netBackoff)
		}
		e.backoff[key] = nb
	}
	nb.streak++
	if nb.streak < e.cfg.Backoff.StreakThreshold {
		return
	}
	// The network looks like it is blocking us: back off exponentially.
	nb.streak = 0
	nb.offenses++
	dur := e.cfg.Backoff.baseTicks()
	for i := 1; i < nb.offenses; i++ {
		dur *= 2
		if dur >= e.cfg.Backoff.maxTicks() {
			dur = e.cfg.Backoff.maxTicks()
			break
		}
	}
	nb.until = e.tickNo + dur
	e.stats.Backoffs++
	e.offensesTotal++
	// Enough networks hostile to this identity? Rotate to a fresh one.
	if ra := e.cfg.Backoff.RotateAfter; ra > 0 &&
		e.rotations < e.cfg.Backoff.maxRotations() &&
		e.offensesTotal >= uint64(ra)*uint64(e.rotations+1) {
		e.rotations++
		e.stats.Rotations++
	}
}

// ActiveBackoffs counts networks currently backed off (telemetry gauge).
func (e *Engine) ActiveBackoffs() int {
	n := 0
	for _, nb := range e.backoff {
		if nb.until > e.tickNo {
			n++
		}
	}
	return n
}

// Rotations returns how many identity rotations have happened.
func (e *Engine) Rotations() int { return e.rotations }

// NetBackoffState is one /24's serialized adaptive state.
type NetBackoffState struct {
	Net      netip.Addr `json:"net"`
	Streak   int        `json:"streak,omitempty"`
	Until    uint64     `json:"until,omitempty"`
	Offenses int        `json:"offenses,omitempty"`
}

// backoffState serializes the adaptive maps in canonical (address) order.
func (e *Engine) backoffState() []NetBackoffState {
	if len(e.backoff) == 0 {
		return nil
	}
	out := make([]NetBackoffState, 0, len(e.backoff))
	for net, nb := range e.backoff {
		out = append(out, NetBackoffState{Net: net, Streak: nb.streak, Until: nb.until, Offenses: nb.offenses})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Net.Less(out[j].Net) })
	return out
}

func (e *Engine) restoreBackoff(states []NetBackoffState) {
	if len(states) == 0 {
		e.backoff = nil
		return
	}
	e.backoff = make(map[netip.Addr]*netBackoff, len(states))
	for _, st := range states {
		e.backoff[st.Net] = &netBackoff{streak: st.Streak, until: st.Until, offenses: st.Offenses}
	}
}

// answeredState serializes the known-responsive address set in canonical
// order.
func (e *Engine) answeredState() []netip.Addr {
	if len(e.answered) == 0 {
		return nil
	}
	out := make([]netip.Addr, 0, len(e.answered))
	for a := range e.answered {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

func (e *Engine) restoreAnswered(addrs []netip.Addr) {
	if len(addrs) == 0 {
		e.answered = nil
		return
	}
	e.answered = make(map[netip.Addr]bool, len(addrs))
	for _, a := range addrs {
		e.answered[a] = true
	}
}

// net24 returns the /24 base address containing a (IPv4).
func net24(a netip.Addr) netip.Addr {
	b := a.As4()
	b[3] = 0
	return netip.AddrFrom4(b)
}
