// Package x509lite implements the certificate subsystem: a compact
// certificate model with deterministic encoding, chain validation against a
// root store, CRL-based revocation, linting, and an append-only certificate
// transparency log.
//
// It substitutes for real X.509/PKIX (see DESIGN.md): the pipeline's
// certificate code paths — parse, validate, lint, revocation refresh, CT
// polling, cert→host indexing — are exercised end to end, while ASN.1 and
// RSA/ECDSA mechanics, which the experiments never measure, are replaced by
// key identities and a keyed-hash "signature".
package x509lite

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"time"
)

// Name is a distinguished name.
type Name struct {
	CommonName   string `json:"cn,omitempty"`
	Organization string `json:"o,omitempty"`
	Country      string `json:"c,omitempty"`
}

// String renders the name in RDN style.
func (n Name) String() string {
	var parts []string
	if n.CommonName != "" {
		parts = append(parts, "CN="+n.CommonName)
	}
	if n.Organization != "" {
		parts = append(parts, "O="+n.Organization)
	}
	if n.Country != "" {
		parts = append(parts, "C="+n.Country)
	}
	return strings.Join(parts, ", ")
}

// Certificate is the compact certificate model.
type Certificate struct {
	Serial    uint64    `json:"serial"`
	Subject   Name      `json:"subject"`
	Issuer    Name      `json:"issuer"`
	NotBefore time.Time `json:"not_before"`
	NotAfter  time.Time `json:"not_after"`
	DNSNames  []string  `json:"dns_names,omitempty"`
	IsCA      bool      `json:"is_ca,omitempty"`
	// KeyID identifies the subject's key pair (stands in for the public key).
	KeyID uint64 `json:"key_id"`
	// Signature binds the certificate body to the issuer's key. It is a
	// keyed hash computed by Sign.
	Signature string `json:"signature,omitempty"`
	// SignerKeyID is the key that produced Signature.
	SignerKeyID uint64 `json:"signer_key_id"`
}

// body returns the to-be-signed encoding.
func (c *Certificate) body() []byte {
	clone := *c
	clone.Signature = ""
	b, err := json.Marshal(&clone)
	if err != nil {
		panic("x509lite: marshal cannot fail: " + err.Error())
	}
	return b
}

// Sign sets the certificate's signature under the given signing key.
func (c *Certificate) Sign(signerKeyID uint64) {
	c.SignerKeyID = signerKeyID
	var key [8]byte
	binary.BigEndian.PutUint64(key[:], signerKeyID)
	h := sha256.New()
	h.Write(key[:])
	h.Write(c.body())
	c.Signature = hex.EncodeToString(h.Sum(nil)[:16])
}

// checkSignature verifies Signature against SignerKeyID.
func (c *Certificate) checkSignature() bool {
	want := *c
	want.Sign(c.SignerKeyID)
	return want.Signature == c.Signature
}

// Encode returns the deterministic serialized form ("DER" of this PKI).
func (c *Certificate) Encode() []byte {
	b, err := json.Marshal(c)
	if err != nil {
		panic("x509lite: marshal cannot fail: " + err.Error())
	}
	return b
}

// Parse decodes a certificate produced by Encode.
func Parse(der []byte) (*Certificate, error) {
	if len(der) == 0 {
		return nil, errors.New("x509lite: empty certificate")
	}
	var c Certificate
	if err := json.Unmarshal(der, &c); err != nil {
		return nil, fmt.Errorf("x509lite: parse: %w", err)
	}
	if c.Subject.CommonName == "" && len(c.DNSNames) == 0 {
		return nil, errors.New("x509lite: certificate names nothing")
	}
	return &c, nil
}

// FingerprintSHA256 returns the hex SHA-256 of the encoded certificate.
func (c *Certificate) FingerprintSHA256() string {
	sum := sha256.Sum256(c.Encode())
	return hex.EncodeToString(sum[:])
}

// SelfSigned reports whether subject and issuer are the same entity.
func (c *Certificate) SelfSigned() bool {
	return c.Subject == c.Issuer && c.SignerKeyID == c.KeyID
}

// MatchesName reports whether the certificate covers name, honouring
// single-label wildcards.
func (c *Certificate) MatchesName(name string) bool {
	name = strings.ToLower(name)
	candidates := c.DNSNames
	if len(candidates) == 0 && c.Subject.CommonName != "" {
		candidates = []string{c.Subject.CommonName}
	}
	for _, d := range candidates {
		d = strings.ToLower(d)
		if d == name {
			return true
		}
		if rest, ok := strings.CutPrefix(d, "*."); ok {
			if suffix, found := strings.CutPrefix(name, firstLabel(name)+"."); found && suffix == rest {
				return true
			}
		}
	}
	return false
}

func firstLabel(name string) string {
	if i := strings.IndexByte(name, '.'); i >= 0 {
		return name[:i]
	}
	return name
}

// CA is a certificate authority: a signing identity plus its revocation list.
type CA struct {
	Cert   *Certificate
	keyID  uint64
	serial uint64
	// revoked is the CRL content: serials this CA has revoked.
	revoked map[uint64]time.Time
}

// NewCA creates a self-signed CA.
func NewCA(name string, keyID uint64, notBefore time.Time, lifetime time.Duration) *CA {
	n := Name{CommonName: name, Organization: name, Country: "US"}
	cert := &Certificate{
		Serial:    1,
		Subject:   n,
		Issuer:    n,
		NotBefore: notBefore,
		NotAfter:  notBefore.Add(lifetime),
		IsCA:      true,
		KeyID:     keyID,
	}
	cert.Sign(keyID)
	return &CA{Cert: cert, keyID: keyID, serial: 1, revoked: make(map[uint64]time.Time)}
}

// Issue signs a leaf certificate for the given names.
func (ca *CA) Issue(subject Name, dnsNames []string, keyID uint64, notBefore time.Time, lifetime time.Duration) *Certificate {
	ca.serial++
	cert := &Certificate{
		Serial:    ca.serial,
		Subject:   subject,
		Issuer:    ca.Cert.Subject,
		NotBefore: notBefore,
		NotAfter:  notBefore.Add(lifetime),
		DNSNames:  dnsNames,
		KeyID:     keyID,
	}
	cert.Sign(ca.keyID)
	return cert
}

// Revoke adds a serial to the CA's CRL.
func (ca *CA) Revoke(serial uint64, at time.Time) {
	ca.revoked[serial] = at
}

// CRL returns the CA's current revocation list.
func (ca *CA) CRL() *CRL {
	out := &CRL{Issuer: ca.Cert.Subject, Revoked: make(map[uint64]time.Time, len(ca.revoked))}
	for s, t := range ca.revoked {
		out.Revoked[s] = t
	}
	return out
}

// CRL is a published certificate revocation list. Censys moved from OCSP to
// CRLs in 2024 (paper §4.4); CRLs are the only revocation source here.
type CRL struct {
	Issuer  Name
	Revoked map[uint64]time.Time
}

// Contains reports whether serial is revoked.
func (c *CRL) Contains(serial uint64) bool {
	if c == nil {
		return false
	}
	_, ok := c.Revoked[serial]
	return ok
}
