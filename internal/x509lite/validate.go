package x509lite

import (
	"fmt"
	"time"
)

// RootStore is a browser-style trust anchor set, keyed by issuer name and
// key identity.
type RootStore struct {
	roots map[string]*Certificate // keyed by Subject.String()
}

// NewRootStore builds a store from trusted CA certificates.
func NewRootStore(roots ...*Certificate) *RootStore {
	s := &RootStore{roots: make(map[string]*Certificate, len(roots))}
	for _, r := range roots {
		s.Add(r)
	}
	return s
}

// Add trusts an additional root.
func (s *RootStore) Add(root *Certificate) {
	s.roots[root.Subject.String()] = root
}

// Lookup returns the trusted root matching the given issuer name, or nil.
func (s *RootStore) Lookup(issuer Name) *Certificate {
	return s.roots[issuer.String()]
}

// Len reports the number of trusted roots.
func (s *RootStore) Len() int { return len(s.roots) }

// ValidationStatus summarises a certificate's standing at a point in time.
type ValidationStatus string

// Validation statuses, mirroring the states the pipeline journals.
const (
	StatusValid       ValidationStatus = "valid"
	StatusExpired     ValidationStatus = "expired"
	StatusNotYetValid ValidationStatus = "not_yet_valid"
	StatusUntrusted   ValidationStatus = "untrusted"
	StatusBadSig      ValidationStatus = "bad_signature"
	StatusRevoked     ValidationStatus = "revoked"
	StatusSelfSigned  ValidationStatus = "self_signed"
)

// Validate checks a leaf certificate against the root store and optional CRL
// at the given instant. Validation status is recomputed daily by the
// pipeline, since it changes with time even when the certificate does not.
func Validate(cert *Certificate, roots *RootStore, crl *CRL, at time.Time) ValidationStatus {
	if at.Before(cert.NotBefore) {
		return StatusNotYetValid
	}
	if at.After(cert.NotAfter) {
		return StatusExpired
	}
	if crl.Contains(cert.Serial) {
		return StatusRevoked
	}
	if cert.SelfSigned() {
		if !cert.checkSignature() {
			return StatusBadSig
		}
		return StatusSelfSigned
	}
	root := roots.Lookup(cert.Issuer)
	if root == nil {
		return StatusUntrusted
	}
	if at.After(root.NotAfter) || at.Before(root.NotBefore) {
		return StatusUntrusted
	}
	if cert.SignerKeyID != root.KeyID || !cert.checkSignature() {
		return StatusBadSig
	}
	return StatusValid
}

// Lint flags certificate-profile violations in the spirit of zlint (paper
// §4.4 "lints it"). Findings are stable identifiers suitable for indexing.
func Lint(cert *Certificate) []string {
	var findings []string
	if len(cert.DNSNames) == 0 && !cert.IsCA {
		findings = append(findings, "w_missing_san")
	}
	if cert.Subject.CommonName == "" {
		findings = append(findings, "w_empty_common_name")
	}
	validity := cert.NotAfter.Sub(cert.NotBefore)
	if !cert.IsCA && validity > 398*24*time.Hour {
		findings = append(findings, "e_validity_exceeds_398_days")
	}
	if cert.NotAfter.Before(cert.NotBefore) {
		findings = append(findings, "e_not_after_before_not_before")
	}
	if cert.Serial == 0 {
		findings = append(findings, "e_serial_zero")
	}
	for _, d := range cert.DNSNames {
		if d == "" {
			findings = append(findings, "e_empty_dns_name")
			break
		}
	}
	if cert.IsCA && len(cert.DNSNames) > 0 {
		findings = append(findings, "w_ca_with_dns_names")
	}
	return findings
}

// CTEntry is one row of a certificate transparency log.
type CTEntry struct {
	Index     uint64
	Timestamp time.Time
	Cert      *Certificate
}

// CTLog is an append-only public certificate log that the pipeline polls for
// new certificates — its main source of web-property names.
type CTLog struct {
	name    string
	entries []CTEntry
}

// NewCTLog creates an empty log.
func NewCTLog(name string) *CTLog { return &CTLog{name: name} }

// Name returns the log's name.
func (l *CTLog) Name() string { return l.name }

// Append adds a certificate at the given (submission) time, returning its
// index. Appends must be time-ordered.
func (l *CTLog) Append(cert *Certificate, at time.Time) (uint64, error) {
	if n := len(l.entries); n > 0 && at.Before(l.entries[n-1].Timestamp) {
		return 0, fmt.Errorf("x509lite: CT append at %v precedes log head %v", at, l.entries[n-1].Timestamp)
	}
	idx := uint64(len(l.entries))
	l.entries = append(l.entries, CTEntry{Index: idx, Timestamp: at, Cert: cert})
	return idx, nil
}

// Size returns the number of entries.
func (l *CTLog) Size() uint64 { return uint64(len(l.entries)) }

// HeadTime returns the timestamp of the newest entry (zero for an empty log).
// Submitters use it to clamp backdated submissions to the log head.
func (l *CTLog) HeadTime() time.Time {
	if len(l.entries) == 0 {
		return time.Time{}
	}
	return l.entries[len(l.entries)-1].Timestamp
}

// Entries returns entries with Index >= from, up to max (0 = no limit).
// This is the polling interface the pipeline consumes.
func (l *CTLog) Entries(from uint64, max int) []CTEntry {
	if from >= uint64(len(l.entries)) {
		return nil
	}
	out := l.entries[from:]
	if max > 0 && len(out) > max {
		out = out[:max]
	}
	return out
}
