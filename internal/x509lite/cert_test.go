package x509lite

import (
	"testing"
	"time"
)

var t0 = time.Date(2024, 8, 1, 0, 0, 0, 0, time.UTC)

func testCA() *CA {
	return NewCA("CensysMap Test Root", 1001, t0.Add(-365*24*time.Hour), 10*365*24*time.Hour)
}

func leaf(ca *CA, names ...string) *Certificate {
	return ca.Issue(Name{CommonName: names[0], Organization: "Example Corp", Country: "US"},
		names, 2001, t0, 90*24*time.Hour)
}

func TestEncodeParseRoundTrip(t *testing.T) {
	ca := testCA()
	c := leaf(ca, "www.example.com", "example.com")
	got, err := Parse(c.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Serial != c.Serial || got.Subject != c.Subject || len(got.DNSNames) != 2 {
		t.Fatalf("round trip = %+v", got)
	}
	if got.FingerprintSHA256() != c.FingerprintSHA256() {
		t.Fatal("fingerprint changed across round trip")
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := Parse(nil); err == nil {
		t.Fatal("empty accepted")
	}
	if _, err := Parse([]byte("{not json")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := Parse([]byte("{}")); err == nil {
		t.Fatal("nameless cert accepted")
	}
}

func TestFingerprintUnique(t *testing.T) {
	ca := testCA()
	a := leaf(ca, "a.example.com")
	b := leaf(ca, "b.example.com")
	if a.FingerprintSHA256() == b.FingerprintSHA256() {
		t.Fatal("distinct certs share fingerprint")
	}
	if len(a.FingerprintSHA256()) != 64 {
		t.Fatalf("fingerprint length = %d", len(a.FingerprintSHA256()))
	}
}

func TestValidateChain(t *testing.T) {
	ca := testCA()
	roots := NewRootStore(ca.Cert)
	c := leaf(ca, "www.example.com")
	if got := Validate(c, roots, nil, t0.Add(24*time.Hour)); got != StatusValid {
		t.Fatalf("Validate = %v, want valid", got)
	}
}

func TestValidateExpiry(t *testing.T) {
	ca := testCA()
	roots := NewRootStore(ca.Cert)
	c := leaf(ca, "www.example.com")
	if got := Validate(c, roots, nil, t0.Add(91*24*time.Hour)); got != StatusExpired {
		t.Fatalf("Validate = %v, want expired", got)
	}
	if got := Validate(c, roots, nil, t0.Add(-time.Hour)); got != StatusNotYetValid {
		t.Fatalf("Validate = %v, want not_yet_valid", got)
	}
}

func TestValidateUntrustedIssuer(t *testing.T) {
	ca := testCA()
	other := NewCA("Unknown Root", 9999, t0.Add(-time.Hour), time.Hour*24*3650)
	roots := NewRootStore(other.Cert)
	c := leaf(ca, "www.example.com")
	if got := Validate(c, roots, nil, t0.Add(time.Hour)); got != StatusUntrusted {
		t.Fatalf("Validate = %v, want untrusted", got)
	}
}

func TestValidateForgedSignature(t *testing.T) {
	ca := testCA()
	roots := NewRootStore(ca.Cert)
	c := leaf(ca, "www.example.com")
	c.Subject.Organization = "Tampered LLC" // body no longer matches signature
	if got := Validate(c, roots, nil, t0.Add(time.Hour)); got != StatusBadSig {
		t.Fatalf("Validate = %v, want bad_signature", got)
	}
}

func TestValidateImpostorKey(t *testing.T) {
	// A cert claiming the trusted issuer's name but signed by another key.
	ca := testCA()
	roots := NewRootStore(ca.Cert)
	impostor := &Certificate{
		Serial: 77, Subject: Name{CommonName: "victim.example.com"},
		Issuer: ca.Cert.Subject, NotBefore: t0, NotAfter: t0.Add(24 * time.Hour),
		DNSNames: []string{"victim.example.com"}, KeyID: 5,
	}
	impostor.Sign(4242) // not the CA's key
	if got := Validate(impostor, roots, nil, t0.Add(time.Hour)); got != StatusBadSig {
		t.Fatalf("Validate = %v, want bad_signature", got)
	}
}

func TestValidateRevoked(t *testing.T) {
	ca := testCA()
	roots := NewRootStore(ca.Cert)
	c := leaf(ca, "www.example.com")
	ca.Revoke(c.Serial, t0.Add(time.Hour))
	if got := Validate(c, roots, ca.CRL(), t0.Add(2*time.Hour)); got != StatusRevoked {
		t.Fatalf("Validate = %v, want revoked", got)
	}
}

func TestValidateSelfSigned(t *testing.T) {
	n := Name{CommonName: "router.local"}
	c := &Certificate{Serial: 5, Subject: n, Issuer: n,
		NotBefore: t0, NotAfter: t0.Add(24 * time.Hour),
		DNSNames: []string{"router.local"}, KeyID: 7}
	c.Sign(7)
	if got := Validate(c, NewRootStore(), nil, t0.Add(time.Hour)); got != StatusSelfSigned {
		t.Fatalf("Validate = %v, want self_signed", got)
	}
}

func TestMatchesName(t *testing.T) {
	ca := testCA()
	c := ca.Issue(Name{CommonName: "example.com"},
		[]string{"example.com", "*.apps.example.com"}, 3, t0, 24*time.Hour)
	cases := []struct {
		name string
		want bool
	}{
		{"example.com", true},
		{"EXAMPLE.COM", true},
		{"www.example.com", false},
		{"a.apps.example.com", true},
		{"b.a.apps.example.com", false}, // wildcard covers one label
		{"apps.example.com", false},
		{"other.com", false},
	}
	for _, cse := range cases {
		if got := c.MatchesName(cse.name); got != cse.want {
			t.Errorf("MatchesName(%q) = %v, want %v", cse.name, got, cse.want)
		}
	}
}

func TestMatchesNameFallsBackToCN(t *testing.T) {
	n := Name{CommonName: "legacy.example.com"}
	c := &Certificate{Serial: 1, Subject: n, Issuer: n, KeyID: 1,
		NotBefore: t0, NotAfter: t0.Add(time.Hour)}
	c.Sign(1)
	if !c.MatchesName("legacy.example.com") {
		t.Fatal("CN fallback failed")
	}
}

func TestLintFindings(t *testing.T) {
	ca := testCA()
	good := leaf(ca, "www.example.com")
	if fs := Lint(good); len(fs) != 0 {
		t.Fatalf("clean cert flagged: %v", fs)
	}
	long := ca.Issue(Name{CommonName: "x"}, []string{"x.example.com"}, 4, t0, 400*24*time.Hour)
	if fs := Lint(long); !contains(fs, "e_validity_exceeds_398_days") {
		t.Fatalf("long validity not flagged: %v", fs)
	}
	noSAN := ca.Issue(Name{CommonName: "nosan.example.com"}, nil, 5, t0, 24*time.Hour)
	if fs := Lint(noSAN); !contains(fs, "w_missing_san") {
		t.Fatalf("missing SAN not flagged: %v", fs)
	}
	backwards := &Certificate{Serial: 9, Subject: Name{CommonName: "x"},
		NotBefore: t0, NotAfter: t0.Add(-time.Hour), DNSNames: []string{"x"}, KeyID: 1}
	if fs := Lint(backwards); !contains(fs, "e_not_after_before_not_before") {
		t.Fatalf("backwards validity not flagged: %v", fs)
	}
}

func contains(ss []string, want string) bool {
	for _, s := range ss {
		if s == want {
			return true
		}
	}
	return false
}

func TestCASerialIncrement(t *testing.T) {
	ca := testCA()
	a := leaf(ca, "a.example.com")
	b := leaf(ca, "b.example.com")
	if a.Serial == b.Serial {
		t.Fatal("serials collide")
	}
}

func TestCTLogAppendPoll(t *testing.T) {
	ca := testCA()
	log := NewCTLog("testlog")
	for i := 0; i < 5; i++ {
		c := leaf(ca, "site.example.com")
		if _, err := log.Append(c, t0.Add(time.Duration(i)*time.Hour)); err != nil {
			t.Fatal(err)
		}
	}
	if log.Size() != 5 {
		t.Fatalf("Size = %d", log.Size())
	}
	got := log.Entries(2, 0)
	if len(got) != 3 || got[0].Index != 2 {
		t.Fatalf("Entries(2) = %d entries, first %d", len(got), got[0].Index)
	}
	capped := log.Entries(0, 2)
	if len(capped) != 2 {
		t.Fatalf("Entries(0,2) = %d entries", len(capped))
	}
	if log.Entries(99, 0) != nil {
		t.Fatal("out-of-range poll returned entries")
	}
}

func TestCTLogRejectsTimeTravel(t *testing.T) {
	ca := testCA()
	log := NewCTLog("testlog")
	if _, err := log.Append(leaf(ca, "a.example.com"), t0); err != nil {
		t.Fatal(err)
	}
	if _, err := log.Append(leaf(ca, "b.example.com"), t0.Add(-time.Hour)); err == nil {
		t.Fatal("out-of-order append accepted")
	}
}

func TestNameString(t *testing.T) {
	n := Name{CommonName: "x", Organization: "Org", Country: "DE"}
	if n.String() != "CN=x, O=Org, C=DE" {
		t.Fatalf("String() = %q", n.String())
	}
}

func TestCRLContainsNil(t *testing.T) {
	var crl *CRL
	if crl.Contains(1) {
		t.Fatal("nil CRL claims revocation")
	}
}
