package snapshot

import (
	"bytes"
	"net/netip"
	"testing"
	"time"

	"censysmap/internal/entity"
)

var day0 = time.Date(2024, 8, 20, 0, 0, 0, 0, time.UTC)

func day(n int) time.Time { return day0.Add(time.Duration(n) * 24 * time.Hour) }

func host(ip string, ports ...uint16) *entity.Host {
	h := entity.NewHost(netip.MustParseAddr(ip))
	h.Location = &entity.Location{Country: "US"}
	h.AS = &entity.AS{Number: 64500}
	for _, p := range ports {
		h.SetService(&entity.Service{Port: p, Transport: entity.TCP, Protocol: "HTTP", Verified: true})
	}
	return h
}

func daily(n int, hosts ...*entity.Host) Daily {
	return Daily{Date: day(n), Rows: RowsFromHosts(day(n), hosts)}
}

func TestRowsFromHostsFlattens(t *testing.T) {
	rows := RowsFromHosts(day(0), []*entity.Host{host("10.0.0.2", 80, 443), host("10.0.0.1", 22)})
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Sorted by IP then port.
	if rows[0].IP != "10.0.0.1" || rows[1].Port != 80 || rows[2].Port != 443 {
		t.Fatalf("order: %+v", rows)
	}
	if rows[0].Country != "US" || rows[0].ASN != 64500 || rows[0].ServiceName != "HTTP" {
		t.Fatalf("row = %+v", rows[0])
	}
}

func TestRowsIncludePendingTimestamp(t *testing.T) {
	h := host("10.0.0.1", 80)
	since := day(0)
	h.Service(entity.ServiceKey{Port: 80, Transport: entity.TCP}).PendingRemovalSince = &since
	rows := RowsFromHosts(day(1), []*entity.Host{h})
	if rows[0].PendingRemovalSince.IsZero() {
		t.Fatal("pending timestamp lost")
	}
}

func TestAddOrderEnforced(t *testing.T) {
	s := NewStore()
	if err := s.Add(daily(1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(daily(1)); err == nil {
		t.Fatal("same-date snapshot accepted")
	}
	if err := s.Add(daily(0)); err == nil {
		t.Fatal("out-of-order snapshot accepted")
	}
}

func TestRetentionThinsOldSnapshots(t *testing.T) {
	s := NewStore()
	// 180 days of snapshots: the older ~90 days must thin to ~1/week.
	for i := 0; i < 180; i++ {
		if err := s.Add(daily(i, host("10.0.0.1", 80))); err != nil {
			t.Fatal(err)
		}
	}
	n := s.Len()
	// Recent 90 days kept daily (90), older 90 days ~13 weekly.
	if n < 95 || n > 110 {
		t.Fatalf("retained %d snapshots, want ~103", n)
	}
	// Oldest retained snapshots are spaced ~a week apart.
	dates := s.Dates()
	gap := dates[1].Sub(dates[0])
	if gap < 6*24*time.Hour {
		t.Fatalf("old snapshots %v apart, want weekly", gap)
	}
	// Longitudinal queries still span the whole window.
	if dates[0].After(day(7)) {
		t.Fatalf("history truncated: oldest %v", dates[0])
	}
}

func TestAtFindsNewestNotAfter(t *testing.T) {
	s := NewStore()
	s.Add(daily(0, host("10.0.0.1", 80)))
	s.Add(daily(2, host("10.0.0.1", 80, 443)))
	d, ok := s.At(day(1))
	if !ok || !d.Date.Equal(day(0)) {
		t.Fatalf("At(day1) = %v ok=%v", d.Date, ok)
	}
	d, _ = s.At(day(5))
	if len(d.Rows) != 2 {
		t.Fatalf("At(day5) rows = %d", len(d.Rows))
	}
	if _, ok := s.At(day0.Add(-time.Hour)); ok {
		t.Fatal("snapshot found before history begins")
	}
}

func TestQueryPredicate(t *testing.T) {
	s := NewStore()
	s.Add(daily(0, host("10.0.0.1", 80, 22), host("10.0.0.2", 443)))
	rows := s.Query(day(0), func(r Row) bool { return r.Port == 443 })
	if len(rows) != 1 || rows[0].IP != "10.0.0.2" {
		t.Fatalf("rows = %+v", rows)
	}
	if got := s.Query(day0.Add(-time.Hour), func(Row) bool { return true }); got != nil {
		t.Fatal("query before history returned rows")
	}
}

func TestSeriesLongitudinal(t *testing.T) {
	s := NewStore()
	s.Add(daily(0, host("10.0.0.1", 80)))
	s.Add(daily(1, host("10.0.0.1", 80), host("10.0.0.2", 80)))
	s.Add(daily(2, host("10.0.0.1", 80), host("10.0.0.2", 80), host("10.0.0.3", 80)))
	dates, values := s.Series(func(d Daily) float64 { return float64(len(d.Rows)) })
	if len(dates) != 3 || values[0] != 1 || values[2] != 3 {
		t.Fatalf("series = %v %v", dates, values)
	}
}

func TestExportImportRoundTrip(t *testing.T) {
	s := NewStore()
	s.Add(daily(0, host("10.0.0.1", 80, 443), host("10.0.0.9", 22)))
	var buf bytes.Buffer
	if err := s.Export(day(0), &buf); err != nil {
		t.Fatal(err)
	}
	got, err := Import(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Rows) != 3 || !got.Date.Equal(day(0)) {
		t.Fatalf("imported %d rows at %v", len(got.Rows), got.Date)
	}
	if got.Rows[0].IP != "10.0.0.1" || got.Rows[2].Port != 22 {
		t.Fatalf("rows = %+v", got.Rows)
	}
}

func TestExportMissingDate(t *testing.T) {
	s := NewStore()
	var buf bytes.Buffer
	if err := s.Export(day(0), &buf); err == nil {
		t.Fatal("export of empty store succeeded")
	}
}

func TestImportGarbage(t *testing.T) {
	if _, err := Import(bytes.NewReader([]byte("not gzip"))); err == nil {
		t.Fatal("garbage import succeeded")
	}
}
