// Package snapshot implements the analytics tier of paper §5.3: daily
// snapshots of the full Internet map, retained for longitudinal analysis and
// bulk export. It stands in for the Google BigQuery tables and the Apache
// Avro raw-data downloads.
//
// Retention follows the paper: every daily snapshot is kept for three
// months; older than that, only one weekday snapshot per week survives, so
// longitudinal queries stay possible at a fraction of the storage.
package snapshot

import (
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"censysmap/internal/entity"
)

// Row is one service row of a daily snapshot — the flat analytics schema
// (the paper's Appendix E query runs against exactly these columns).
type Row struct {
	SnapshotDate time.Time `json:"snapshot_date"`
	IP           string    `json:"ip"`
	Port         uint16    `json:"port"`
	Transport    string    `json:"transport"`
	ServiceName  string    `json:"service_name"`
	TLS          bool      `json:"tls,omitempty"`
	CertSHA256   string    `json:"cert_sha256,omitempty"`
	Country      string    `json:"country,omitempty"`
	ASN          uint32    `json:"asn,omitempty"`
	// PendingRemovalSince is non-zero for services in their eviction grace
	// window; analytics queries filter on it like the paper's
	// "pending_removal_since is null".
	PendingRemovalSince time.Time `json:"pending_removal_since,omitempty"`
}

// Daily is one day's snapshot.
type Daily struct {
	Date time.Time
	Rows []Row
}

// Store holds the snapshot history.
type Store struct {
	mu     sync.RWMutex
	dailys []Daily // sorted by date
	// RetainDaily is how long every daily snapshot is kept (paper: 3
	// months); beyond it, thinning keeps one snapshot per week.
	RetainDaily time.Duration
}

// NewStore creates a store with the paper's retention policy.
func NewStore() *Store {
	return &Store{RetainDaily: 90 * 24 * time.Hour}
}

// RowsFromHosts flattens host records into the snapshot schema.
func RowsFromHosts(date time.Time, hosts []*entity.Host) []Row {
	var rows []Row
	for _, h := range hosts {
		country := ""
		if h.Location != nil {
			country = h.Location.Country
		}
		var asn uint32
		if h.AS != nil {
			asn = h.AS.Number
		}
		for _, svc := range h.AllServices() {
			row := Row{
				SnapshotDate: date,
				IP:           h.IP.String(),
				Port:         svc.Port,
				Transport:    string(svc.Transport),
				ServiceName:  svc.Protocol,
				TLS:          svc.TLS,
				CertSHA256:   svc.CertSHA256,
				Country:      country,
				ASN:          asn,
			}
			if svc.PendingRemovalSince != nil {
				row.PendingRemovalSince = *svc.PendingRemovalSince
			}
			rows = append(rows, row)
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].IP != rows[j].IP {
			return rows[i].IP < rows[j].IP
		}
		return rows[i].Port < rows[j].Port
	})
	return rows
}

// Add appends a daily snapshot and applies retention thinning. Snapshots
// must arrive in date order.
func (s *Store) Add(d Daily) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n := len(s.dailys); n > 0 && !d.Date.After(s.dailys[n-1].Date) {
		return fmt.Errorf("snapshot: date %v not after head %v", d.Date, s.dailys[n-1].Date)
	}
	s.dailys = append(s.dailys, d)
	s.thin(d.Date)
	return nil
}

// thin keeps one snapshot per ISO week beyond the daily-retention horizon.
func (s *Store) thin(now time.Time) {
	horizon := now.Add(-s.RetainDaily)
	kept := s.dailys[:0]
	var lastWeek string
	for _, d := range s.dailys {
		if !d.Date.Before(horizon) {
			kept = append(kept, d)
			continue
		}
		y, w := d.Date.ISOWeek()
		week := fmt.Sprintf("%d-%02d", y, w)
		if week == lastWeek {
			continue // a snapshot from this week is already kept
		}
		lastWeek = week
		kept = append(kept, d)
	}
	s.dailys = kept
}

// Len reports retained snapshots.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.dailys)
}

// Dates lists retained snapshot dates.
func (s *Store) Dates() []time.Time {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]time.Time, len(s.dailys))
	for i, d := range s.dailys {
		out[i] = d.Date
	}
	return out
}

// At returns the newest snapshot at or before date.
func (s *Store) At(date time.Time) (Daily, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	idx := sort.Search(len(s.dailys), func(i int) bool {
		return s.dailys[i].Date.After(date)
	})
	if idx == 0 {
		return Daily{}, false
	}
	return s.dailys[idx-1], true
}

// Query runs a predicate scan over one snapshot — the arbitrarily-complex
// analytics path that the interactive search tier cannot serve.
func (s *Store) Query(date time.Time, pred func(Row) bool) []Row {
	d, ok := s.At(date)
	if !ok {
		return nil
	}
	var out []Row
	for _, r := range d.Rows {
		if pred(r) {
			out = append(out, r)
		}
	}
	return out
}

// Series computes a longitudinal aggregate across every retained snapshot —
// e.g. "count of MODBUS services over time".
func (s *Store) Series(agg func(Daily) float64) (dates []time.Time, values []float64) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, d := range s.dailys {
		dates = append(dates, d.Date)
		values = append(values, agg(d))
	}
	return dates, values
}

// Export writes a snapshot as gzipped JSON-lines — the "raw data downloads"
// researchers prefer (each line one Row; Avro's role is played by a
// self-describing row encoding).
func (s *Store) Export(date time.Time, w io.Writer) error {
	d, ok := s.At(date)
	if !ok {
		return fmt.Errorf("snapshot: no snapshot at or before %v", date)
	}
	gz := gzip.NewWriter(w)
	enc := json.NewEncoder(gz)
	for _, r := range d.Rows {
		if err := enc.Encode(r); err != nil {
			gz.Close()
			return err
		}
	}
	return gz.Close()
}

// Import reads an exported snapshot back.
func Import(r io.Reader) (Daily, error) {
	gz, err := gzip.NewReader(r)
	if err != nil {
		return Daily{}, err
	}
	defer gz.Close()
	dec := json.NewDecoder(gz)
	var d Daily
	for {
		var row Row
		if err := dec.Decode(&row); err != nil {
			if err == io.EOF {
				break
			}
			return Daily{}, err
		}
		d.Rows = append(d.Rows, row)
	}
	if len(d.Rows) > 0 {
		d.Date = d.Rows[0].SnapshotDate
	}
	return d, nil
}
