// Package lookup implements the Fast Lookup API of paper §5.3: a REST
// surface over the read-side storage for high-throughput lookups by entity
// ID and timestamp ("what did IP A look like at time B?", "what IPs has
// certificate X been seen on?"). It is backed directly by the journal, so
// requests are cheap point reads.
package lookup

import (
	"encoding/json"
	"net/http"
	"net/netip"
	"sort"
	"strconv"
	"strings"
	"time"

	"censysmap/internal/cqrs"
	"censysmap/internal/entity"
	"censysmap/internal/search"
	"censysmap/internal/shard"
	"censysmap/internal/simclock"
)

// DegradedHeader is set on every response while the backing map serves in
// degraded mode: storage recovery quarantined partitions, or — under a
// cluster placement — partitions whose replica quorum is below majority or
// whose serving replica lags the replication log. Its value names the
// affected partitions, e.g. "quarantined-partitions=2,5/8" or
// "degraded-quorum-partitions=1,3/8".
const DegradedHeader = "X-Censys-Degraded"

// ServingNodeHeader names the cluster node whose replica answered a routed
// point lookup. Absent when no placement is installed (the classic
// single-process deployment).
const ServingNodeHeader = "X-Censys-Serving-Node"

// Route is one partition's serving state under a placement.
type Route struct {
	// Node names the serving replica's node.
	Node string
	// Degraded reports a partition served below its safety margin: fewer
	// alive replicas than a majority of the replication factor, or a serving
	// replica still catching up on the replication log.
	Degraded bool
	// Unserved reports that no alive replica can answer for the partition;
	// lookups for its entities get 503, and fan-out queries fail whole.
	Unserved bool
}

// Placement routes partitions to serving nodes. The cluster layer implements
// it over its placement map and leases; a single-node deployment uses the
// degenerate implementation in internal/core, which routes every partition to
// the local node and never degrades.
type Placement interface {
	// Partitions is the placement's partition space (the journal stripe
	// count entity IDs hash into).
	Partitions() int
	// Route reports the serving state of one partition.
	Route(partition int) Route
	// ReaderFor returns the serving replica's read path for a partition, or
	// nil to fall back on the service's own reader (the local journal).
	ReaderFor(partition int) *cqrs.Reader
}

// Service answers lookups; it is both a Go API and an http.Handler.
type Service struct {
	reader *cqrs.Reader
	certs  *cqrs.CertIndex
	clock  simclock.Clock
	mux    *http.ServeMux
	index  *search.Index
	// metrics is the optional telemetry hookup (see AttachMetrics).
	metrics *svcMetrics

	// Degraded-mode state (see SetDegraded): quarantined partition set,
	// the partition space it indexes, and the precomputed header value.
	degradedParts map[int]bool
	degradedMod   int
	degradedVal   string

	// placement, when set, routes point lookups to the serving replica's
	// reader and folds quorum health into the degraded header (see
	// SetPlacement).
	placement Placement
}

// New creates a lookup service. certs may be nil.
func New(reader *cqrs.Reader, certs *cqrs.CertIndex, clock simclock.Clock) *Service {
	s := &Service{reader: reader, certs: certs, clock: clock}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v2/hosts/{ip}", s.handleHost)
	mux.HandleFunc("GET /v2/hosts/{ip}/history", s.handleHistory)
	mux.HandleFunc("GET /v2/certificates/{fp}/hosts", s.handleCertHosts)
	s.mux = mux
	return s
}

// AttachSearch registers the interactive-search endpoint
// (GET /v2/hosts/search?q=<query>[&limit=n]) backed by the query engine.
// Result fetches use the engine's batched per-partition host path — one lock
// acquisition per partition, not one per matching host.
func (s *Service) AttachSearch(ix *search.Index) {
	s.index = ix
	s.mux.HandleFunc("GET /v2/hosts/search", s.handleSearch)
}

// Host returns the host record as of the given time (zero time = now).
func (s *Service) Host(ip netip.Addr, at time.Time) (*entity.Host, bool) {
	if at.IsZero() {
		at = s.clock.Now()
	}
	return s.reader.HostAt(ip.String(), at)
}

// CertHosts returns "ip port/transport" locators currently presenting the
// certificate fingerprint.
func (s *Service) CertHosts(fingerprint string) []string {
	if s.certs == nil {
		return nil
	}
	return s.certs.Locations(fingerprint)
}

// SetDegraded switches the service into degraded mode: every response
// carries DegradedHeader, and point lookups for entities in quarantined
// partitions answer 503 (honest unavailability) instead of 404 (a claim the
// host does not exist that the journal can no longer back).
func (s *Service) SetDegraded(parts []int, mod int) {
	if len(parts) == 0 || mod <= 0 {
		s.degradedParts, s.degradedMod, s.degradedVal = nil, 0, ""
		return
	}
	s.degradedParts = make(map[int]bool, len(parts))
	list := make([]string, len(parts))
	for i, p := range parts {
		s.degradedParts[p] = true
		list[i] = strconv.Itoa(p)
	}
	s.degradedMod = mod
	s.degradedVal = "quarantined-partitions=" + strings.Join(list, ",") + "/" + strconv.Itoa(mod)
}

// quarantined reports whether an entity ID falls in a quarantined partition.
func (s *Service) quarantined(id string) bool {
	return s.degradedParts != nil && s.degradedParts[shard.Of(id, s.degradedMod)]
}

// SetPlacement installs (or, with nil, clears) a partition placement. With a
// placement installed point lookups route to the serving replica's reader,
// responses name that replica in ServingNodeHeader, and partitions with a
// weak or absent quorum surface in DegradedHeader alongside quarantine state.
func (s *Service) SetPlacement(p Placement) { s.placement = p }

// routeFor resolves an entity ID under the installed placement. routed is
// false when no placement is installed; the reader is never nil — a placement
// that declines to provide one falls back on the service's own.
func (s *Service) routeFor(id string) (rt Route, reader *cqrs.Reader, routed bool) {
	if s.placement == nil {
		return Route{}, s.reader, false
	}
	part := shard.Of(id, s.placement.Partitions())
	rt = s.placement.Route(part)
	reader = s.placement.ReaderFor(part)
	if reader == nil {
		reader = s.reader
	}
	return rt, reader, true
}

// degradedValue combines quarantine state and placement quorum health into
// the DegradedHeader value. Empty means fully healthy.
func (s *Service) degradedValue() string {
	fields := make([]string, 0, 3)
	if s.degradedVal != "" {
		fields = append(fields, s.degradedVal)
	}
	if s.placement != nil {
		n := s.placement.Partitions()
		var deg, uns []string
		for p := 0; p < n; p++ {
			rt := s.placement.Route(p)
			switch {
			case rt.Unserved:
				uns = append(uns, strconv.Itoa(p))
			case rt.Degraded:
				deg = append(deg, strconv.Itoa(p))
			}
		}
		if len(deg) > 0 {
			fields = append(fields, "degraded-quorum-partitions="+strings.Join(deg, ",")+"/"+strconv.Itoa(n))
		}
		if len(uns) > 0 {
			fields = append(fields, "unserved-partitions="+strings.Join(uns, ",")+"/"+strconv.Itoa(n))
		}
	}
	return strings.Join(fields, "; ")
}

// fanoutUnavailable lists partitions that cannot contribute to a fan-out
// query (interactive search, certificate→hosts): quarantined by storage
// recovery or unserved under the placement. A fan-out answer is only
// trustworthy when every partition can answer, so any entry here turns the
// whole query into 503 (paper §5.2: partial answers are presented as
// complete, which is worse than honest unavailability).
func (s *Service) fanoutUnavailable() []int {
	var parts []int
	for p := 0; p < s.degradedMod; p++ {
		if s.degradedParts[p] {
			parts = append(parts, p)
		}
	}
	if s.placement != nil {
		for p := 0; p < s.placement.Partitions(); p++ {
			if s.placement.Route(p).Unserved && !s.degradedParts[p] {
				parts = append(parts, p)
			}
		}
	}
	sort.Ints(parts)
	return parts
}

// failFanout writes the 503 for a fan-out query blocked by unavailable
// partitions.
func failFanout(w http.ResponseWriter, what string, parts []int) {
	list := make([]string, len(parts))
	for i, p := range parts {
		list[i] = strconv.Itoa(p)
	}
	writeJSON(w, http.StatusServiceUnavailable, errorBody{
		what + " fans out over all partitions; unavailable: " + strings.Join(list, ",")})
}

type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// parseAt reads the optional ?at= RFC3339 timestamp.
func (s *Service) parseAt(r *http.Request) (time.Time, bool) {
	q := r.URL.Query().Get("at")
	if q == "" {
		return s.clock.Now(), true
	}
	t, err := time.Parse(time.RFC3339, q)
	if err != nil {
		return time.Time{}, false
	}
	return t, true
}

func (s *Service) handleHost(w http.ResponseWriter, r *http.Request) {
	ip, err := netip.ParseAddr(r.PathValue("ip"))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{"invalid ip"})
		return
	}
	at, ok := s.parseAt(r)
	if !ok {
		writeJSON(w, http.StatusBadRequest, errorBody{"invalid at timestamp (RFC3339)"})
		return
	}
	if s.quarantined(ip.String()) {
		writeJSON(w, http.StatusServiceUnavailable,
			errorBody{"host partition quarantined; serving degraded"})
		return
	}
	rt, reader, routed := s.routeFor(ip.String())
	if routed {
		w.Header().Set(ServingNodeHeader, rt.Node)
		if rt.Unserved {
			writeJSON(w, http.StatusServiceUnavailable,
				errorBody{"host partition unserved; no in-sync replica"})
			return
		}
	}
	h, found := reader.HostAt(ip.String(), at)
	if !found {
		writeJSON(w, http.StatusNotFound, errorBody{"host not found"})
		return
	}
	writeJSON(w, http.StatusOK, h)
}

// historyEntry is the wire form of one journaled change.
type historyEntry struct {
	Seq  uint64          `json:"seq"`
	Time time.Time       `json:"time"`
	Kind string          `json:"kind"`
	Body json.RawMessage `json:"body,omitempty"`
}

func (s *Service) handleHistory(w http.ResponseWriter, r *http.Request) {
	ip, err := netip.ParseAddr(r.PathValue("ip"))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{"invalid ip"})
		return
	}
	if s.quarantined(ip.String()) {
		writeJSON(w, http.StatusServiceUnavailable,
			errorBody{"host partition quarantined; serving degraded"})
		return
	}
	rt, reader, routed := s.routeFor(ip.String())
	if routed {
		w.Header().Set(ServingNodeHeader, rt.Node)
		if rt.Unserved {
			writeJSON(w, http.StatusServiceUnavailable,
				errorBody{"host partition unserved; no in-sync replica"})
			return
		}
	}
	events := reader.History(ip.String())
	out := make([]historyEntry, 0, len(events))
	for _, ev := range events {
		out = append(out, historyEntry{Seq: ev.Seq, Time: ev.Time, Kind: ev.Kind,
			Body: json.RawMessage(ev.Payload)})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Service) handleSearch(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query().Get("q")
	if q == "" {
		writeJSON(w, http.StatusBadRequest, errorBody{"missing q parameter"})
		return
	}
	limit := 0
	if l := r.URL.Query().Get("limit"); l != "" {
		n, err := strconv.Atoi(l)
		if err != nil || n < 0 {
			writeJSON(w, http.StatusBadRequest, errorBody{"invalid limit"})
			return
		}
		limit = n
	}
	if parts := s.fanoutUnavailable(); len(parts) > 0 {
		failFanout(w, "search", parts)
		return
	}
	// IDs first, hosts second: a limited search clones and serializes only
	// the hosts it will return, not the full result slice — the total still
	// reports the complete match count from the (cheap) ID lists.
	ids, err := s.index.Search(q)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{err.Error()})
		return
	}
	total := len(ids)
	if limit > 0 && total > limit {
		ids = ids[:limit]
	}
	hosts := s.index.HostsByID(ids)
	writeJSON(w, http.StatusOK, map[string]any{
		"query": q,
		"total": total,
		"hosts": hosts,
	})
}

func (s *Service) handleCertHosts(w http.ResponseWriter, r *http.Request) {
	fp := strings.ToLower(r.PathValue("fp"))
	if fp == "" {
		writeJSON(w, http.StatusBadRequest, errorBody{"missing fingerprint"})
		return
	}
	if parts := s.fanoutUnavailable(); len(parts) > 0 {
		failFanout(w, "certificate-to-hosts", parts)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"fingerprint": fp,
		"hosts":       s.CertHosts(fp),
	})
}
