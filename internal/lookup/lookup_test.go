package lookup

import (
	"encoding/json"
	"net/http/httptest"
	"net/netip"
	"net/url"
	"testing"
	"time"

	"censysmap/internal/cqrs"
	"censysmap/internal/entity"
	"censysmap/internal/journal"
	"censysmap/internal/search"
	"censysmap/internal/simclock"
)

func fixture(t *testing.T) (*Service, *simclock.Sim) {
	t.Helper()
	clk := simclock.New()
	j := journal.NewStore()
	p := cqrs.NewProcessor(cqrs.DefaultConfig(), j)
	ci := cqrs.NewCertIndex()
	ci.Follow(p)

	addr := netip.MustParseAddr("10.0.0.1")
	svc1 := &entity.Service{Port: 443, Transport: entity.TCP, Protocol: "HTTP",
		TLS: true, CertSHA256: "fp1", Banner: "v1", Verified: true}
	if err := p.Apply(cqrs.Observation{Addr: addr, Port: 443, Transport: entity.TCP,
		Time: clk.Now(), Success: true, Service: svc1}); err != nil {
		t.Fatal(err)
	}
	clk.Advance(24 * time.Hour)
	svc2 := svc1.Clone()
	svc2.Banner = "v2"
	if err := p.Apply(cqrs.Observation{Addr: addr, Port: 443, Transport: entity.TCP,
		Time: clk.Now(), Success: true, Service: svc2}); err != nil {
		t.Fatal(err)
	}
	p.Drain()
	return New(cqrs.NewReader(j, nil), ci, clk), clk
}

func TestHostLookupCurrent(t *testing.T) {
	s, _ := fixture(t)
	h, ok := s.Host(netip.MustParseAddr("10.0.0.1"), time.Time{})
	if !ok {
		t.Fatal("not found")
	}
	if h.Service(entity.ServiceKey{Port: 443, Transport: entity.TCP}).Banner != "v2" {
		t.Fatal("current state wrong")
	}
}

func TestHostLookupAtTimestamp(t *testing.T) {
	s, _ := fixture(t)
	h, ok := s.Host(netip.MustParseAddr("10.0.0.1"), simclock.Epoch.Add(time.Hour))
	if !ok {
		t.Fatal("not found")
	}
	if h.Service(entity.ServiceKey{Port: 443, Transport: entity.TCP}).Banner != "v1" {
		t.Fatal("historical state wrong")
	}
}

func TestHTTPHostEndpoint(t *testing.T) {
	s, _ := fixture(t)
	req := httptest.NewRequest("GET", "/v2/hosts/10.0.0.1", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != 200 {
		t.Fatalf("status = %d body=%s", rec.Code, rec.Body)
	}
	var h entity.Host
	if err := json.Unmarshal(rec.Body.Bytes(), &h); err != nil {
		t.Fatal(err)
	}
	if h.IP.String() != "10.0.0.1" {
		t.Fatalf("host = %+v", h)
	}
}

func TestHTTPHostAtParam(t *testing.T) {
	s, _ := fixture(t)
	at := simclock.Epoch.Add(time.Hour).Format(time.RFC3339)
	req := httptest.NewRequest("GET", "/v2/hosts/10.0.0.1?at="+at, nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	var h entity.Host
	json.Unmarshal(rec.Body.Bytes(), &h)
	if h.Service(entity.ServiceKey{Port: 443, Transport: entity.TCP}).Banner != "v1" {
		t.Fatal("at= not honored")
	}
}

func TestHTTPErrors(t *testing.T) {
	s, _ := fixture(t)
	cases := []struct {
		url  string
		code int
	}{
		{"/v2/hosts/banana", 400},
		{"/v2/hosts/10.0.0.1?at=notatime", 400},
		{"/v2/hosts/10.9.9.9", 404},
		{"/v2/hosts/banana/history", 400},
	}
	for _, c := range cases {
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, httptest.NewRequest("GET", c.url, nil))
		if rec.Code != c.code {
			t.Errorf("%s -> %d, want %d", c.url, rec.Code, c.code)
		}
	}
}

func TestHistoryEndpoint(t *testing.T) {
	s, _ := fixture(t)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("GET", "/v2/hosts/10.0.0.1/history", nil))
	if rec.Code != 200 {
		t.Fatalf("status = %d", rec.Code)
	}
	var entries []historyEntry
	if err := json.Unmarshal(rec.Body.Bytes(), &entries); err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 || entries[0].Kind != cqrs.KindServiceFound ||
		entries[1].Kind != cqrs.KindServiceChanged {
		t.Fatalf("entries = %+v", entries)
	}
}

func TestCertHostsEndpoint(t *testing.T) {
	s, _ := fixture(t)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("GET", "/v2/certificates/fp1/hosts", nil))
	if rec.Code != 200 {
		t.Fatalf("status = %d", rec.Code)
	}
	var body struct {
		Fingerprint string   `json:"fingerprint"`
		Hosts       []string `json:"hosts"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if len(body.Hosts) != 1 || body.Hosts[0] != "10.0.0.1 443/tcp" {
		t.Fatalf("hosts = %v", body.Hosts)
	}
}

// searchFixture attaches a partitioned search index holding three hosts.
func searchFixture(t *testing.T) *Service {
	t.Helper()
	s, _ := fixture(t)
	ix := search.NewPartitioned(4)
	for i, country := range []string{"US", "DE", "US"} {
		h := entity.NewHost(netip.MustParseAddr("10.0.0." + string(rune('1'+i))))
		h.Location = &entity.Location{Country: country}
		h.SetService(&entity.Service{Port: 443, Transport: entity.TCP,
			Protocol: "HTTP", Verified: true})
		ix.Upsert(h)
	}
	s.AttachSearch(ix)
	return s
}

type searchBody struct {
	Query string        `json:"query"`
	Total int           `json:"total"`
	Hosts []entity.Host `json:"hosts"`
}

func TestSearchEndpoint(t *testing.T) {
	s := searchFixture(t)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("GET",
		"/v2/hosts/search?q="+url.QueryEscape("location.country: US"), nil))
	if rec.Code != 200 {
		t.Fatalf("status = %d body=%s", rec.Code, rec.Body)
	}
	var body searchBody
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body.Total != 2 || len(body.Hosts) != 2 {
		t.Fatalf("body = %+v", body)
	}
	// Hosts striped over 4 partitions must come back merged in ID order.
	if body.Hosts[0].IP.String() != "10.0.0.1" || body.Hosts[1].IP.String() != "10.0.0.3" {
		t.Fatalf("order = %s, %s", body.Hosts[0].IP, body.Hosts[1].IP)
	}
}

func TestSearchEndpointLimit(t *testing.T) {
	s := searchFixture(t)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("GET",
		"/v2/hosts/search?limit=1&q="+url.QueryEscape("services.protocol: HTTP"), nil))
	var body searchBody
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	// total reports the full match count; hosts is truncated to the limit.
	if body.Total != 3 || len(body.Hosts) != 1 || body.Hosts[0].IP.String() != "10.0.0.1" {
		t.Fatalf("body = %+v", body)
	}
}

func TestSearchEndpointErrors(t *testing.T) {
	s := searchFixture(t)
	cases := []string{
		"/v2/hosts/search",                 // missing q
		"/v2/hosts/search?q=" + url.QueryEscape("location.country: US and"), // parse error
		"/v2/hosts/search?limit=-2&q=x",    // bad limit
		"/v2/hosts/search?limit=banana&q=x",
	}
	for _, u := range cases {
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, httptest.NewRequest("GET", u, nil))
		if rec.Code != 400 {
			t.Errorf("%s -> %d, want 400", u, rec.Code)
		}
	}
}

func TestSearchEndpointAbsentWithoutAttach(t *testing.T) {
	s, _ := fixture(t)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("GET", "/v2/hosts/search?q=x", nil))
	// Without AttachSearch the path falls through to /v2/hosts/{ip} and is
	// rejected as an invalid address.
	if rec.Code != 400 {
		t.Fatalf("status = %d, want 400 (route not registered)", rec.Code)
	}
}

func TestCertHostsNilIndex(t *testing.T) {
	clk := simclock.New()
	s := New(cqrs.NewReader(journal.NewStore(), nil), nil, clk)
	if got := s.CertHosts("x"); got != nil {
		t.Fatalf("got %v", got)
	}
}
