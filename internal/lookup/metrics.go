package lookup

import (
	"net/http"

	"censysmap/internal/telemetry"
)

// svcMetrics instruments the HTTP surface: request counts and latency per
// route pattern. Latency is measured on the service clock — zero under the
// simulated clock (requests complete within one instant), real durations
// when a Service runs on a wall clock — so instrumented simulation runs stay
// bit-identical.
type svcMetrics struct {
	registry *telemetry.Registry
	tracer   *telemetry.Tracer
	requests *telemetry.CounterVec
	latency  *telemetry.HistogramVec
}

// latencyBounds bucket request latency in seconds.
var latencyBounds = []float64{0.001, 0.005, 0.025, 0.1, 0.5, 2.5}

// AttachMetrics registers GET /v2/metrics and per-endpoint instrumentation
// on reg. The tracer, when non-nil, contributes sampled pipeline spans to
// the JSON exposition. A nil registry is a no-op.
func (s *Service) AttachMetrics(reg *telemetry.Registry, tracer *telemetry.Tracer) {
	if reg == nil {
		return
	}
	s.metrics = &svcMetrics{
		registry: reg,
		tracer:   tracer,
		requests: reg.CounterVec("censys_lookup_requests_total",
			"lookup API requests served, by route", "route"),
		latency: reg.HistogramVec("censys_lookup_latency_seconds",
			"lookup API request latency, by route", "route", latencyBounds),
	}
	s.mux.HandleFunc("GET /v2/metrics", s.handleMetrics)
}

// ServeHTTP implements http.Handler, recording per-route telemetry when
// metrics are attached. In degraded mode — quarantined partitions, or weak
// quorum under a placement — every response, including search results and
// metric scrapes, carries the degraded header, so clients can tell "no
// results" from "partitions missing".
func (s *Service) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if v := s.degradedValue(); v != "" {
		w.Header().Set(DegradedHeader, v)
	}
	m := s.metrics
	if m == nil {
		s.mux.ServeHTTP(w, r)
		return
	}
	_, pattern := s.mux.Handler(r)
	if pattern == "" {
		pattern = "unmatched"
	}
	// Counted at dispatch, not completion, so a /v2/metrics scrape includes
	// itself — every exposition accounts for the request that produced it.
	m.requests.With(pattern).Inc()
	start := s.clock.Now()
	s.mux.ServeHTTP(w, r)
	m.latency.With(pattern).Observe(s.clock.Now().Sub(start).Seconds())
}

// metricsJSON is the JSON exposition: the metric snapshot plus sampled
// trace spans.
type metricsJSON struct {
	Metrics telemetry.Snapshot `json:"metrics"`
	Traces  []telemetry.Span   `json:"traces,omitempty"`
}

// handleMetrics serves the registry in Prometheus text format (the default)
// or as a JSON document with trace spans (?format=json). Both render from
// one Snapshot taken at the simulated instant of the request.
func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := s.metrics.registry.Snapshot(s.clock.Now())
	if r.URL.Query().Get("format") == "json" {
		writeJSON(w, http.StatusOK, metricsJSON{
			Metrics: snap,
			Traces:  s.metrics.tracer.Spans(),
		})
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write([]byte(snap.PrometheusText()))
}
