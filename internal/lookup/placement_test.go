package lookup

import (
	"encoding/json"
	"net/http/httptest"
	"net/netip"
	"testing"

	"censysmap/internal/cqrs"
	"censysmap/internal/entity"
	"censysmap/internal/journal"
	"censysmap/internal/shard"
)

// fakePlacement routes a fixed partition space with per-partition overrides.
type fakePlacement struct {
	parts  int
	routes map[int]Route
	reads  map[int]*cqrs.Reader
}

func (f fakePlacement) Partitions() int { return f.parts }

func (f fakePlacement) Route(p int) Route {
	if rt, ok := f.routes[p]; ok {
		return rt
	}
	return Route{Node: "node-0"}
}

func (f fakePlacement) ReaderFor(p int) *cqrs.Reader { return f.reads[p] }

const fakeParts = 4

func TestPlacementServingNodeHeader(t *testing.T) {
	s, _ := fixture(t)
	part := shard.Of("10.0.0.1", fakeParts)
	s.SetPlacement(fakePlacement{parts: fakeParts,
		routes: map[int]Route{part: {Node: "node-2"}}})
	for _, u := range []string{"/v2/hosts/10.0.0.1", "/v2/hosts/10.0.0.1/history"} {
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, httptest.NewRequest("GET", u, nil))
		if rec.Code != 200 {
			t.Fatalf("%s -> %d body=%s", u, rec.Code, rec.Body)
		}
		if got := rec.Header().Get(ServingNodeHeader); got != "node-2" {
			t.Fatalf("%s serving node = %q, want node-2", u, got)
		}
		if got := rec.Header().Get(DegradedHeader); got != "" {
			t.Fatalf("%s healthy placement set degraded header %q", u, got)
		}
	}
}

// TestPlacementFollowerRead: a partition routed to another reader answers
// from that reader's journal, not the service's own.
func TestPlacementFollowerRead(t *testing.T) {
	s, clk := fixture(t)
	// Build a "replica" journal whose copy of the host is distinguishable.
	rj := journal.NewStore()
	rp := cqrs.NewProcessor(cqrs.DefaultConfig(), rj)
	addr := netip.MustParseAddr("10.0.0.1")
	if err := rp.Apply(cqrs.Observation{Addr: addr, Port: 443, Transport: entity.TCP,
		Time: clk.Now(), Success: true,
		Service: &entity.Service{Port: 443, Transport: entity.TCP, Protocol: "HTTP",
			Banner: "from-replica", Verified: true}}); err != nil {
		t.Fatal(err)
	}
	rp.Drain()

	part := shard.Of(addr.String(), fakeParts)
	s.SetPlacement(fakePlacement{parts: fakeParts,
		routes: map[int]Route{part: {Node: "node-1"}},
		reads:  map[int]*cqrs.Reader{part: cqrs.NewReader(rj, nil)}})

	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("GET", "/v2/hosts/10.0.0.1", nil))
	if rec.Code != 200 {
		t.Fatalf("status = %d body=%s", rec.Code, rec.Body)
	}
	var h entity.Host
	if err := json.Unmarshal(rec.Body.Bytes(), &h); err != nil {
		t.Fatal(err)
	}
	if got := h.Service(entity.ServiceKey{Port: 443, Transport: entity.TCP}).Banner; got != "from-replica" {
		t.Fatalf("banner = %q, want the replica reader's copy", got)
	}
}

func TestPlacementUnserved(t *testing.T) {
	s := searchFixture(t)
	part := shard.Of("10.0.0.1", fakeParts)
	s.SetPlacement(fakePlacement{parts: fakeParts,
		routes: map[int]Route{part: {Node: "node-1", Unserved: true}}})

	// Point lookups in the unserved partition answer 503.
	for _, u := range []string{"/v2/hosts/10.0.0.1", "/v2/hosts/10.0.0.1/history"} {
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, httptest.NewRequest("GET", u, nil))
		if rec.Code != 503 {
			t.Fatalf("%s -> %d, want 503", u, rec.Code)
		}
	}
	// Fan-out queries fail whole: one missing partition poisons the answer.
	for _, u := range []string{"/v2/hosts/search?q=x", "/v2/certificates/fp1/hosts"} {
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, httptest.NewRequest("GET", u, nil))
		if rec.Code != 503 {
			t.Fatalf("%s -> %d, want 503", u, rec.Code)
		}
		if got := rec.Header().Get(DegradedHeader); got == "" {
			t.Fatalf("%s missing degraded header", u)
		}
	}
}

func TestPlacementDegradedQuorumServesWithHeader(t *testing.T) {
	s := searchFixture(t)
	s.SetPlacement(fakePlacement{parts: fakeParts,
		routes: map[int]Route{2: {Node: "node-1", Degraded: true}}})
	// Degraded quorum still has the data — responses succeed but warn.
	for _, u := range []string{"/v2/hosts/10.0.0.1", "/v2/hosts/search?q=services.protocol:%20HTTP"} {
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, httptest.NewRequest("GET", u, nil))
		if rec.Code != 200 {
			t.Fatalf("%s -> %d body=%s", u, rec.Code, rec.Body)
		}
		if got := rec.Header().Get(DegradedHeader); got != "degraded-quorum-partitions=2/4" {
			t.Fatalf("%s degraded header = %q", u, got)
		}
	}
}

// TestFanoutQuarantined503: storage-recovery quarantine (no placement at
// all) must fail fan-out queries too — a search over a map missing
// partitions would silently present a partial answer as complete.
func TestFanoutQuarantined503(t *testing.T) {
	s := searchFixture(t)
	s.SetDegraded([]int{1, 3}, 8)
	for _, u := range []string{"/v2/hosts/search?q=x", "/v2/certificates/fp1/hosts"} {
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, httptest.NewRequest("GET", u, nil))
		if rec.Code != 503 {
			t.Fatalf("%s -> %d, want 503", u, rec.Code)
		}
		if got := rec.Header().Get(DegradedHeader); got != "quarantined-partitions=1,3/8" {
			t.Fatalf("%s degraded header = %q", u, got)
		}
	}
	// Clearing quarantine restores fan-out service.
	s.SetDegraded(nil, 0)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("GET", "/v2/certificates/fp1/hosts", nil))
	if rec.Code != 200 {
		t.Fatalf("recovered cert-hosts -> %d, want 200", rec.Code)
	}
}
