package lookup

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"net/netip"
	"testing"

	"censysmap/internal/entity"
	"censysmap/internal/search"
)

// TestSearchBoundedAllocation is the regression guard for the limited-search
// allocation fix: /v2/hosts/search?limit=n must clone and serialize only the
// n hosts it returns, not the full result set. With 2048 matching hosts and
// limit=4, the old full-slice path cloned every host (several allocations
// apiece — well over 2048 total); the ID-first path stays within a small
// constant budget.
func TestSearchBoundedAllocation(t *testing.T) {
	s, _ := fixture(t)
	ix := search.NewPartitioned(4)
	const hosts = 2048
	for i := 0; i < hosts; i++ {
		h := entity.NewHost(netip.MustParseAddr(fmt.Sprintf("10.0.%d.%d", i/256, i%256)))
		h.Location = &entity.Location{Country: "US"}
		h.SetService(&entity.Service{Port: 443, Transport: entity.TCP,
			Protocol: "HTTP", TLS: true, Banner: "server-banner", Verified: true})
		ix.Upsert(h)
	}
	s.AttachSearch(ix)

	req := httptest.NewRequest("GET",
		"/v2/hosts/search?q=services.protocol%3A+HTTP&limit=4", nil)
	// Warm the query cache and any lazy route state outside the measurement.
	s.ServeHTTP(httptest.NewRecorder(), req)

	allocs := testing.AllocsPerRun(20, func() {
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		if rec.Code != 200 {
			t.Fatalf("status = %d body=%s", rec.Code, rec.Body)
		}
	})
	// The budget covers the recorder, response envelope, 4 host clones, and
	// JSON encoding — and nothing proportional to the 2048 matches. Cloning
	// the full result set costs thousands of allocations and fails loudly.
	const budget = 400
	if allocs > budget {
		t.Fatalf("limited search allocates %.0f allocs/op over %d matching hosts; budget %d — "+
			"result materialization is no longer bounded by limit", allocs, hosts, budget)
	}

	// The limit still reports the full match count.
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	var body searchBody
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body.Total != hosts || len(body.Hosts) != 4 {
		t.Fatalf("total=%d hosts=%d, want total=%d hosts=4", body.Total, len(body.Hosts), hosts)
	}
}
