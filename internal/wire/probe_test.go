package wire

import (
	"bytes"
	"net/netip"
	"testing"
)

func TestSYNProbeShape(t *testing.T) {
	p := NewProber(42, 40000)
	pkt, err := p.SYN(srcAddr, dstAddr, 443)
	if err != nil {
		t.Fatal(err)
	}
	var ip IPv4
	seg, err := ip.DecodeFromBytes(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if ip.Src != srcAddr || ip.Dst != dstAddr || ip.Protocol != IPProtocolTCP {
		t.Fatalf("IP header = %+v", ip)
	}
	if ip.Flags&FlagDF == 0 {
		t.Fatal("probe missing DF bit (Linux SYNs set DF)")
	}
	var tcp TCP
	if _, err := tcp.DecodeFromBytes(seg); err != nil {
		t.Fatal(err)
	}
	if tcp.Flags != FlagSYN || tcp.DstPort != 443 || tcp.SrcPort != 40000 {
		t.Fatalf("TCP header = %+v", tcp)
	}
	if tcp.Window != 64240 {
		t.Fatalf("window = %d, want Linux default 64240", tcp.Window)
	}
	// Linux SYN option fingerprint: MSS, SACKperm, TS, NOP, WScale.
	kinds := []uint8{}
	for _, o := range tcp.Options {
		kinds = append(kinds, o.Kind)
	}
	want := []uint8{TCPOptMSS, TCPOptSACKPerm, TCPOptTimestamps, TCPOptNOP, TCPOptWScale}
	if len(kinds) != len(want) {
		t.Fatalf("option kinds = %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("option kinds = %v, want %v", kinds, want)
		}
	}
}

func TestSYNValidationDeterministic(t *testing.T) {
	a := NewProber(7, 40000)
	b := NewProber(7, 40000)
	p1, _ := a.SYN(srcAddr, dstAddr, 80)
	p2, _ := b.SYN(srcAddr, dstAddr, 80)
	if !bytes.Equal(p1, p2) {
		t.Fatal("same secret produced different probes")
	}
	c := NewProber(8, 40000)
	p3, _ := c.SYN(srcAddr, dstAddr, 80)
	if bytes.Equal(p1, p3) {
		t.Fatal("different secrets produced identical probes")
	}
}

func TestSynAckRoundTrip(t *testing.T) {
	p := NewProber(99, 40000)
	probe, err := p.SYN(srcAddr, dstAddr, 8080)
	if err != nil {
		t.Fatal(err)
	}
	reply, err := SynAck(probe, 29200)
	if err != nil {
		t.Fatal(err)
	}
	resp, ok := p.ParseResponse(srcAddr, reply)
	if !ok {
		t.Fatal("valid SYN-ACK rejected")
	}
	if resp.Kind != ResponseOpen {
		t.Fatalf("Kind = %v, want ResponseOpen", resp.Kind)
	}
	if resp.Addr != dstAddr || resp.Port != 8080 {
		t.Fatalf("resp = %+v", resp)
	}
	if resp.Window != 29200 {
		t.Fatalf("window = %d, want 29200", resp.Window)
	}
}

func TestRstClassifiedClosed(t *testing.T) {
	p := NewProber(99, 40000)
	probe, _ := p.SYN(srcAddr, dstAddr, 22)
	reply, err := Rst(probe)
	if err != nil {
		t.Fatal(err)
	}
	resp, ok := p.ParseResponse(srcAddr, reply)
	if !ok || resp.Kind != ResponseClosed {
		t.Fatalf("resp = %+v ok=%v, want closed", resp, ok)
	}
}

func TestForgedResponseRejected(t *testing.T) {
	p := NewProber(99, 40000)
	probe, _ := p.SYN(srcAddr, dstAddr, 22)
	reply, _ := SynAck(probe, 1024)

	// A response validated under a different secret must be rejected.
	other := NewProber(100, 40000)
	if _, ok := other.ParseResponse(srcAddr, reply); ok {
		t.Fatal("response for another scanner's probe accepted")
	}

	// Corrupting the ack number breaks validation.
	var ip IPv4
	seg, _ := ip.DecodeFromBytes(reply)
	seg[8] ^= 0xFF // ack high byte (offset 8 within TCP header)
	if _, ok := p.ParseResponse(srcAddr, reply); ok {
		t.Fatal("corrupted ack accepted")
	}
}

func TestResponseToOtherHostRejected(t *testing.T) {
	p := NewProber(99, 40000)
	probe, _ := p.SYN(srcAddr, dstAddr, 22)
	reply, _ := SynAck(probe, 1024)
	if _, ok := p.ParseResponse(netip.MustParseAddr("203.0.113.9"), reply); ok {
		t.Fatal("response addressed elsewhere accepted")
	}
}

func TestResponseWrongDstPortRejected(t *testing.T) {
	p := NewProber(99, 40000)
	q := NewProber(99, 40001)
	probe, _ := q.SYN(srcAddr, dstAddr, 22)
	reply, _ := SynAck(probe, 1024)
	if _, ok := p.ParseResponse(srcAddr, reply); ok {
		t.Fatal("response to a different source port accepted")
	}
}

func TestUDPProbeReplyRoundTrip(t *testing.T) {
	p := NewProber(5, 40000)
	probe, err := p.UDPProbe(srcAddr, dstAddr, 53, []byte{0xAA, 0xBB})
	if err != nil {
		t.Fatal(err)
	}
	reply, err := UDPReply(probe, []byte("dns-answer"))
	if err != nil {
		t.Fatal(err)
	}
	resp, ok := p.ParseResponse(srcAddr, reply)
	if !ok {
		t.Fatal("UDP reply rejected")
	}
	if resp.Kind != ResponseUDPReply || resp.Port != 53 {
		t.Fatalf("resp = %+v", resp)
	}
	if string(resp.Payload) != "dns-answer" {
		t.Fatalf("payload = %q", resp.Payload)
	}
}

func TestParseResponseGarbage(t *testing.T) {
	p := NewProber(1, 40000)
	if _, ok := p.ParseResponse(srcAddr, []byte{1, 2, 3}); ok {
		t.Fatal("garbage accepted")
	}
	if _, ok := p.ParseResponse(srcAddr, nil); ok {
		t.Fatal("nil accepted")
	}
	// ICMP protocol packet is ignored.
	ip := IPv4{TTL: 64, Protocol: IPProtocolICMP, Src: dstAddr, Dst: srcAddr}
	pkt, _ := ip.AppendTo(nil, 0)
	if _, ok := p.ParseResponse(srcAddr, pkt); ok {
		t.Fatal("ICMP accepted")
	}
}

func TestPlainAckWithoutSynRejected(t *testing.T) {
	p := NewProber(99, 40000)
	probe, _ := p.SYN(srcAddr, dstAddr, 22)
	var ip IPv4
	seg, _ := ip.DecodeFromBytes(probe)
	var tcp TCP
	tcp.DecodeFromBytes(seg)
	// Build a bare ACK (no SYN, no RST) with a valid validation token.
	reply := TCP{SrcPort: 22, DstPort: 40000, Ack: tcp.Seq + 1, Flags: FlagACK}
	rseg, _ := reply.AppendTo(nil, dstAddr, srcAddr, nil)
	rip := IPv4{TTL: 64, Protocol: IPProtocolTCP, Src: dstAddr, Dst: srcAddr}
	pkt, _ := rip.AppendTo(nil, len(rseg))
	pkt = append(pkt, rseg...)
	if _, ok := p.ParseResponse(srcAddr, pkt); ok {
		t.Fatal("bare ACK accepted")
	}
}

func BenchmarkSYNProbe(b *testing.B) {
	p := NewProber(42, 40000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := p.SYN(srcAddr, dstAddr, uint16(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParseResponse(b *testing.B) {
	p := NewProber(42, 40000)
	probe, _ := p.SYN(srcAddr, dstAddr, 443)
	reply, _ := SynAck(probe, 1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok := p.ParseResponse(srcAddr, reply); !ok {
			b.Fatal("reject")
		}
	}
}
