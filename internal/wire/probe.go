package wire

import (
	"encoding/binary"
	"net/netip"
)

// Prober builds stateless discovery probes and validates responses without
// per-probe state, in the manner of ZMap: each probe's TCP sequence number is
// an HMAC-like digest of the flow 4-tuple under a per-scanner secret, so a
// response can be attributed to a probe (and forged responses rejected) by
// recomputing the digest from the response's own headers.
type Prober struct {
	secret  uint64
	srcPort uint16
	ttl     uint8
}

// NewProber creates a Prober. The secret seeds response validation; srcPort
// is the fixed source port probes are sent from.
func NewProber(secret uint64, srcPort uint16) *Prober {
	return &Prober{secret: secret, srcPort: srcPort, ttl: 64}
}

// validation computes the per-flow validation token. The token must be
// reproducible from response headers alone: for a probe to (dst, dport) from
// (src, sport), the SYN-ACK arrives with src=dst, sport=dport, making the
// tuple recoverable. The mix is a keyed splitmix64 finalizer — not
// cryptographic, but deterministic and well distributed, which is all
// off-path response validation needs here.
func (p *Prober) validation(src, dst netip.Addr, sport, dport uint16) uint32 {
	s, d := src.As4(), dst.As4()
	x := p.secret
	x ^= uint64(binary.BigEndian.Uint32(s[:])) << 32
	x ^= uint64(binary.BigEndian.Uint32(d[:]))
	x ^= uint64(sport)<<16 | uint64(dport)
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	x ^= x >> 31
	return uint32(x)
}

// linuxSYNOptions returns TCP options matching a modern Linux client SYN
// (MSS 1460, SACK permitted, timestamps, NOP, window scale 7) so probes do
// not stand out to middleboxes that fingerprint scanners.
func linuxSYNOptions() []TCPOption {
	ts := make([]byte, 8)
	return []TCPOption{
		{Kind: TCPOptMSS, Data: []byte{0x05, 0xb4}},
		{Kind: TCPOptSACKPerm},
		{Kind: TCPOptTimestamps, Data: ts},
		{Kind: TCPOptNOP},
		{Kind: TCPOptWScale, Data: []byte{7}},
	}
}

// SYN builds a TCP SYN probe from src to dst:dport, returning the full IPv4
// packet bytes.
func (p *Prober) SYN(src, dst netip.Addr, dport uint16) ([]byte, error) {
	tcp := TCP{
		SrcPort: p.srcPort,
		DstPort: dport,
		Seq:     p.validation(src, dst, p.srcPort, dport),
		Flags:   FlagSYN,
		Window:  64240, // Linux default initial window
		Options: linuxSYNOptions(),
	}
	segment, err := tcp.AppendTo(nil, src, dst, nil)
	if err != nil {
		return nil, err
	}
	ip := IPv4{
		ID:       uint16(tcp.Seq), // pseudorandom, derived from validation
		Flags:    FlagDF,
		TTL:      p.ttl,
		Protocol: IPProtocolTCP,
		Src:      src,
		Dst:      dst,
	}
	pkt, err := ip.AppendTo(nil, len(segment))
	if err != nil {
		return nil, err
	}
	return append(pkt, segment...), nil
}

// UDPProbe builds a protocol-specific UDP probe carrying payload.
func (p *Prober) UDPProbe(src, dst netip.Addr, dport uint16, payload []byte) ([]byte, error) {
	udp := UDP{SrcPort: p.srcPort, DstPort: dport}
	segment, err := udp.AppendTo(nil, src, dst, payload)
	if err != nil {
		return nil, err
	}
	ip := IPv4{
		ID:       uint16(p.validation(src, dst, p.srcPort, dport)),
		Flags:    FlagDF,
		TTL:      p.ttl,
		Protocol: IPProtocolUDP,
		Src:      src,
		Dst:      dst,
	}
	pkt, err := ip.AppendTo(nil, len(segment))
	if err != nil {
		return nil, err
	}
	return append(pkt, segment...), nil
}

// ResponseKind classifies a validated response to a discovery probe.
type ResponseKind int

// Response classifications.
const (
	ResponseInvalid  ResponseKind = iota // not attributable to one of our probes
	ResponseOpen                         // SYN-ACK: service candidate
	ResponseClosed                       // RST
	ResponseUDPReply                     // UDP payload received
)

// Response is a parsed, validated reply to a discovery probe.
type Response struct {
	Kind    ResponseKind
	Addr    netip.Addr // responding host
	Port    uint16     // responding service port
	Window  uint16     // TCP window from the response (an L4 feature)
	Payload []byte     // UDP reply payload, if any
}

// ParseResponse decodes an inbound IPv4 packet addressed to local and
// attributes it to a probe. ok is false for packets that fail validation —
// stray traffic, forged responses, or responses to another scanner.
func (p *Prober) ParseResponse(local netip.Addr, pkt []byte) (Response, bool) {
	var ip IPv4
	payload, err := ip.DecodeFromBytes(pkt)
	if err != nil || ip.Dst != local {
		return Response{}, false
	}
	switch ip.Protocol {
	case IPProtocolTCP:
		var tcp TCP
		_, err := tcp.DecodeFromBytes(payload)
		if err != nil || tcp.DstPort != p.srcPort {
			return Response{}, false
		}
		// For a response, the remote's (addr, port) were our probe's
		// destination: validation was computed over (local, remote, ...).
		want := p.validation(local, ip.Src, p.srcPort, tcp.SrcPort)
		if tcp.Ack != want+1 {
			return Response{}, false
		}
		kind := ResponseClosed
		if tcp.Flags&FlagSYN != 0 && tcp.Flags&FlagACK != 0 {
			kind = ResponseOpen
		} else if tcp.Flags&FlagRST == 0 {
			return Response{}, false
		}
		return Response{Kind: kind, Addr: ip.Src, Port: tcp.SrcPort, Window: tcp.Window}, true
	case IPProtocolUDP:
		var udp UDP
		data, err := udp.DecodeFromBytes(payload)
		if err != nil || udp.DstPort != p.srcPort {
			return Response{}, false
		}
		return Response{Kind: ResponseUDPReply, Addr: ip.Src, Port: udp.SrcPort, Payload: data}, true
	}
	return Response{}, false
}

// SynAck builds the SYN-ACK a simulated host sends in reply to a SYN probe
// packet. It is used by the synthetic Internet to answer discovery probes
// with wire-faithful packets.
func SynAck(probe []byte, window uint16) ([]byte, error) {
	var ip IPv4
	seg, err := ip.DecodeFromBytes(probe)
	if err != nil {
		return nil, err
	}
	var tcp TCP
	if _, err := tcp.DecodeFromBytes(seg); err != nil {
		return nil, err
	}
	reply := TCP{
		SrcPort: tcp.DstPort,
		DstPort: tcp.SrcPort,
		Seq:     0x1000, // arbitrary server ISN
		Ack:     tcp.Seq + 1,
		Flags:   FlagSYN | FlagACK,
		Window:  window,
		Options: []TCPOption{{Kind: TCPOptMSS, Data: []byte{0x05, 0xb4}}},
	}
	segment, err := reply.AppendTo(nil, ip.Dst, ip.Src, nil)
	if err != nil {
		return nil, err
	}
	rip := IPv4{TTL: 64, Protocol: IPProtocolTCP, Src: ip.Dst, Dst: ip.Src}
	pkt, err := rip.AppendTo(nil, len(segment))
	if err != nil {
		return nil, err
	}
	return append(pkt, segment...), nil
}

// Rst builds the RST a simulated host sends for a SYN to a closed port.
func Rst(probe []byte) ([]byte, error) {
	var ip IPv4
	seg, err := ip.DecodeFromBytes(probe)
	if err != nil {
		return nil, err
	}
	var tcp TCP
	if _, err := tcp.DecodeFromBytes(seg); err != nil {
		return nil, err
	}
	reply := TCP{
		SrcPort: tcp.DstPort,
		DstPort: tcp.SrcPort,
		Ack:     tcp.Seq + 1,
		Flags:   FlagRST | FlagACK,
	}
	segment, err := reply.AppendTo(nil, ip.Dst, ip.Src, nil)
	if err != nil {
		return nil, err
	}
	rip := IPv4{TTL: 64, Protocol: IPProtocolTCP, Src: ip.Dst, Dst: ip.Src}
	pkt, err := rip.AppendTo(nil, len(segment))
	if err != nil {
		return nil, err
	}
	return append(pkt, segment...), nil
}

// UDPReply builds the UDP response a simulated host sends to a UDP probe.
func UDPReply(probe []byte, payload []byte) ([]byte, error) {
	var ip IPv4
	seg, err := ip.DecodeFromBytes(probe)
	if err != nil {
		return nil, err
	}
	var udp UDP
	if _, err := udp.DecodeFromBytes(seg); err != nil {
		return nil, err
	}
	reply := UDP{SrcPort: udp.DstPort, DstPort: udp.SrcPort}
	segment, err := reply.AppendTo(nil, ip.Dst, ip.Src, payload)
	if err != nil {
		return nil, err
	}
	rip := IPv4{TTL: 64, Protocol: IPProtocolUDP, Src: ip.Dst, Dst: ip.Src}
	pkt, err := rip.AppendTo(nil, len(segment))
	if err != nil {
		return nil, err
	}
	return append(pkt, segment...), nil
}
