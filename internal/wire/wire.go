// Package wire implements the minimal userspace network stack used by the
// discovery scan engine: crafting and parsing Ethernet, IPv4, TCP and UDP
// packets without the kernel's connection state. Discovery probes are
// stateless — response matching is done by encoding scan metadata into
// sequence numbers and ephemeral ports (the ZMap technique), so the stack
// needs no per-probe memory.
//
// The decode API follows the preallocated-decoder style of gopacket's
// DecodingLayerParser: DecodeFromBytes fills an existing struct, so the hot
// receive path performs no allocation.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
)

// Common decode errors.
var (
	ErrTruncated = errors.New("wire: truncated packet")
	ErrBadFormat = errors.New("wire: malformed header")
)

// EtherType identifies the payload protocol of an Ethernet frame.
type EtherType uint16

// Supported EtherType values.
const (
	EtherTypeIPv4 EtherType = 0x0800
	EtherTypeARP  EtherType = 0x0806
	EtherTypeIPv6 EtherType = 0x86DD
)

// IPProtocol identifies the payload protocol of an IPv4 packet.
type IPProtocol uint8

// Supported IPv4 payload protocols.
const (
	IPProtocolICMP IPProtocol = 1
	IPProtocolTCP  IPProtocol = 6
	IPProtocolUDP  IPProtocol = 17
)

// Ethernet is a 14-byte Ethernet II header.
type Ethernet struct {
	Dst  [6]byte
	Src  [6]byte
	Type EtherType
}

// ethernetLen is the encoded size of an Ethernet II header.
const ethernetLen = 14

// DecodeFromBytes parses an Ethernet header from data.
func (e *Ethernet) DecodeFromBytes(data []byte) (payload []byte, err error) {
	if len(data) < ethernetLen {
		return nil, ErrTruncated
	}
	copy(e.Dst[:], data[0:6])
	copy(e.Src[:], data[6:12])
	e.Type = EtherType(binary.BigEndian.Uint16(data[12:14]))
	return data[ethernetLen:], nil
}

// AppendTo appends the encoded header to b and returns the extended slice.
func (e *Ethernet) AppendTo(b []byte) []byte {
	b = append(b, e.Dst[:]...)
	b = append(b, e.Src[:]...)
	return binary.BigEndian.AppendUint16(b, uint16(e.Type))
}

// IPv4 is an IPv4 header without options (IHL=5), which is what the scan
// engine emits and what virtually all responses carry.
type IPv4 struct {
	TOS      uint8
	Length   uint16 // total length incl. header; filled by Serialize if zero
	ID       uint16
	Flags    uint8 // 3 bits: reserved, DF, MF
	FragOff  uint16
	TTL      uint8
	Protocol IPProtocol
	Checksum uint16 // filled by Serialize
	Src, Dst netip.Addr
}

// ipv4Len is the encoded size of an option-less IPv4 header.
const ipv4Len = 20

// FlagDF is the Don't Fragment bit in IPv4.Flags.
const FlagDF = 0x2

// DecodeFromBytes parses an IPv4 header from data. Headers with options are
// accepted; the options are skipped.
func (ip *IPv4) DecodeFromBytes(data []byte) (payload []byte, err error) {
	if len(data) < ipv4Len {
		return nil, ErrTruncated
	}
	if version := data[0] >> 4; version != 4 {
		return nil, fmt.Errorf("%w: IP version %d", ErrBadFormat, version)
	}
	ihl := int(data[0]&0x0F) * 4
	if ihl < ipv4Len {
		return nil, fmt.Errorf("%w: IHL %d", ErrBadFormat, ihl)
	}
	if len(data) < ihl {
		return nil, ErrTruncated
	}
	ip.TOS = data[1]
	ip.Length = binary.BigEndian.Uint16(data[2:4])
	ip.ID = binary.BigEndian.Uint16(data[4:6])
	ff := binary.BigEndian.Uint16(data[6:8])
	ip.Flags = uint8(ff >> 13)
	ip.FragOff = ff & 0x1FFF
	ip.TTL = data[8]
	ip.Protocol = IPProtocol(data[9])
	ip.Checksum = binary.BigEndian.Uint16(data[10:12])
	ip.Src = netip.AddrFrom4([4]byte(data[12:16]))
	ip.Dst = netip.AddrFrom4([4]byte(data[16:20]))
	end := int(ip.Length)
	if end == 0 || end > len(data) {
		end = len(data)
	}
	if end < ihl {
		return nil, fmt.Errorf("%w: total length %d < IHL %d", ErrBadFormat, ip.Length, ihl)
	}
	return data[ihl:end], nil
}

// AppendTo appends the encoded header (with checksum) to b, assuming the
// payload that follows has length payloadLen.
func (ip *IPv4) AppendTo(b []byte, payloadLen int) ([]byte, error) {
	if !ip.Src.Is4() || !ip.Dst.Is4() {
		return nil, fmt.Errorf("%w: IPv4 addresses required", ErrBadFormat)
	}
	total := ipv4Len + payloadLen
	if total > 0xFFFF {
		return nil, fmt.Errorf("%w: packet length %d exceeds 65535", ErrBadFormat, total)
	}
	start := len(b)
	b = append(b, 0x45, ip.TOS)
	b = binary.BigEndian.AppendUint16(b, uint16(total))
	b = binary.BigEndian.AppendUint16(b, ip.ID)
	b = binary.BigEndian.AppendUint16(b, uint16(ip.Flags)<<13|ip.FragOff&0x1FFF)
	b = append(b, ip.TTL, uint8(ip.Protocol), 0, 0) // checksum placeholder
	src, dst := ip.Src.As4(), ip.Dst.As4()
	b = append(b, src[:]...)
	b = append(b, dst[:]...)
	sum := Checksum(b[start:], 0)
	binary.BigEndian.PutUint16(b[start+10:], sum)
	return b, nil
}

// TCPFlags is the TCP flag byte (plus NS, unused here).
type TCPFlags uint8

// TCP flag bits.
const (
	FlagFIN TCPFlags = 1 << 0
	FlagSYN TCPFlags = 1 << 1
	FlagRST TCPFlags = 1 << 2
	FlagPSH TCPFlags = 1 << 3
	FlagACK TCPFlags = 1 << 4
	FlagURG TCPFlags = 1 << 5
)

// String renders flags in the conventional compact form, e.g. "SYN|ACK".
func (f TCPFlags) String() string {
	names := []struct {
		bit  TCPFlags
		name string
	}{
		{FlagFIN, "FIN"}, {FlagSYN, "SYN"}, {FlagRST, "RST"},
		{FlagPSH, "PSH"}, {FlagACK, "ACK"}, {FlagURG, "URG"},
	}
	s := ""
	for _, n := range names {
		if f&n.bit != 0 {
			if s != "" {
				s += "|"
			}
			s += n.name
		}
	}
	if s == "" {
		return "none"
	}
	return s
}

// TCPOption is a single TCP header option.
type TCPOption struct {
	Kind uint8
	Data []byte // option payload, excluding kind and length bytes
}

// TCP option kinds used by the scanner.
const (
	TCPOptEnd        = 0
	TCPOptNOP        = 1
	TCPOptMSS        = 2
	TCPOptWScale     = 3
	TCPOptSACKPerm   = 4
	TCPOptTimestamps = 8
)

// TCP is a TCP header.
type TCP struct {
	SrcPort, DstPort uint16
	Seq, Ack         uint32
	Flags            TCPFlags
	Window           uint16
	Checksum         uint16 // filled by AppendTo
	Urgent           uint16
	Options          []TCPOption
}

// tcpMinLen is the encoded size of an option-less TCP header.
const tcpMinLen = 20

// DecodeFromBytes parses a TCP header from data.
func (t *TCP) DecodeFromBytes(data []byte) (payload []byte, err error) {
	if len(data) < tcpMinLen {
		return nil, ErrTruncated
	}
	t.SrcPort = binary.BigEndian.Uint16(data[0:2])
	t.DstPort = binary.BigEndian.Uint16(data[2:4])
	t.Seq = binary.BigEndian.Uint32(data[4:8])
	t.Ack = binary.BigEndian.Uint32(data[8:12])
	dataOff := int(data[12]>>4) * 4
	if dataOff < tcpMinLen {
		return nil, fmt.Errorf("%w: TCP data offset %d", ErrBadFormat, dataOff)
	}
	if len(data) < dataOff {
		return nil, ErrTruncated
	}
	t.Flags = TCPFlags(data[13] & 0x3F)
	t.Window = binary.BigEndian.Uint16(data[14:16])
	t.Checksum = binary.BigEndian.Uint16(data[16:18])
	t.Urgent = binary.BigEndian.Uint16(data[18:20])
	t.Options = t.Options[:0]
	opts := data[tcpMinLen:dataOff]
	for len(opts) > 0 {
		kind := opts[0]
		switch kind {
		case TCPOptEnd:
			opts = nil
		case TCPOptNOP:
			t.Options = append(t.Options, TCPOption{Kind: TCPOptNOP})
			opts = opts[1:]
		default:
			if len(opts) < 2 {
				return nil, fmt.Errorf("%w: truncated TCP option", ErrBadFormat)
			}
			olen := int(opts[1])
			if olen < 2 || olen > len(opts) {
				return nil, fmt.Errorf("%w: TCP option length %d", ErrBadFormat, olen)
			}
			t.Options = append(t.Options, TCPOption{Kind: kind, Data: opts[2:olen]})
			opts = opts[olen:]
		}
	}
	return data[dataOff:], nil
}

// optionsLen returns the padded length of the encoded options.
func (t *TCP) optionsLen() int {
	n := 0
	for _, o := range t.Options {
		if o.Kind == TCPOptNOP || o.Kind == TCPOptEnd {
			n++
		} else {
			n += 2 + len(o.Data)
		}
	}
	return (n + 3) &^ 3 // pad to 4-byte boundary
}

// AppendTo appends the encoded header (with checksum over the pseudo-header,
// header and payload) to b.
func (t *TCP) AppendTo(b []byte, src, dst netip.Addr, payload []byte) ([]byte, error) {
	optLen := t.optionsLen()
	hdrLen := tcpMinLen + optLen
	if hdrLen > 60 {
		return nil, fmt.Errorf("%w: TCP options too long (%d bytes)", ErrBadFormat, optLen)
	}
	start := len(b)
	b = binary.BigEndian.AppendUint16(b, t.SrcPort)
	b = binary.BigEndian.AppendUint16(b, t.DstPort)
	b = binary.BigEndian.AppendUint32(b, t.Seq)
	b = binary.BigEndian.AppendUint32(b, t.Ack)
	b = append(b, uint8(hdrLen/4)<<4, uint8(t.Flags))
	b = binary.BigEndian.AppendUint16(b, t.Window)
	b = append(b, 0, 0) // checksum placeholder
	b = binary.BigEndian.AppendUint16(b, t.Urgent)
	written := 0
	for _, o := range t.Options {
		switch o.Kind {
		case TCPOptNOP, TCPOptEnd:
			b = append(b, o.Kind)
			written++
		default:
			b = append(b, o.Kind, uint8(2+len(o.Data)))
			b = append(b, o.Data...)
			written += 2 + len(o.Data)
		}
	}
	for ; written < optLen; written++ {
		b = append(b, TCPOptEnd)
	}
	b = append(b, payload...)
	sum, err := transportChecksum(src, dst, IPProtocolTCP, b[start:])
	if err != nil {
		return nil, err
	}
	binary.BigEndian.PutUint16(b[start+16:], sum)
	return b, nil
}

// UDP is a UDP header.
type UDP struct {
	SrcPort, DstPort uint16
	Length           uint16 // filled by AppendTo
	Checksum         uint16 // filled by AppendTo
}

// udpLen is the encoded size of a UDP header.
const udpLen = 8

// DecodeFromBytes parses a UDP header from data.
func (u *UDP) DecodeFromBytes(data []byte) (payload []byte, err error) {
	if len(data) < udpLen {
		return nil, ErrTruncated
	}
	u.SrcPort = binary.BigEndian.Uint16(data[0:2])
	u.DstPort = binary.BigEndian.Uint16(data[2:4])
	u.Length = binary.BigEndian.Uint16(data[4:6])
	u.Checksum = binary.BigEndian.Uint16(data[6:8])
	if int(u.Length) < udpLen || int(u.Length) > len(data) {
		return nil, fmt.Errorf("%w: UDP length %d", ErrBadFormat, u.Length)
	}
	return data[udpLen:u.Length], nil
}

// AppendTo appends the encoded header and payload to b.
func (u *UDP) AppendTo(b []byte, src, dst netip.Addr, payload []byte) ([]byte, error) {
	total := udpLen + len(payload)
	if total > 0xFFFF {
		return nil, fmt.Errorf("%w: UDP datagram too long", ErrBadFormat)
	}
	start := len(b)
	b = binary.BigEndian.AppendUint16(b, u.SrcPort)
	b = binary.BigEndian.AppendUint16(b, u.DstPort)
	b = binary.BigEndian.AppendUint16(b, uint16(total))
	b = append(b, 0, 0) // checksum placeholder
	b = append(b, payload...)
	sum, err := transportChecksum(src, dst, IPProtocolUDP, b[start:])
	if err != nil {
		return nil, err
	}
	if sum == 0 {
		sum = 0xFFFF // RFC 768: transmitted zero checksum means "none"
	}
	binary.BigEndian.PutUint16(b[start+6:], sum)
	return b, nil
}

// Checksum computes the Internet checksum (RFC 1071) of data folded into the
// running sum initial.
func Checksum(data []byte, initial uint32) uint16 {
	sum := initial
	for len(data) >= 2 {
		sum += uint32(binary.BigEndian.Uint16(data[:2]))
		data = data[2:]
	}
	if len(data) == 1 {
		sum += uint32(data[0]) << 8
	}
	for sum > 0xFFFF {
		sum = (sum & 0xFFFF) + (sum >> 16)
	}
	return ^uint16(sum)
}

// transportChecksum computes the TCP/UDP checksum including the IPv4
// pseudo-header.
func transportChecksum(src, dst netip.Addr, proto IPProtocol, segment []byte) (uint16, error) {
	if !src.Is4() || !dst.Is4() {
		return 0, fmt.Errorf("%w: IPv4 addresses required for checksum", ErrBadFormat)
	}
	s4, d4 := src.As4(), dst.As4()
	var pseudo [12]byte
	copy(pseudo[0:4], s4[:])
	copy(pseudo[4:8], d4[:])
	pseudo[9] = uint8(proto)
	binary.BigEndian.PutUint16(pseudo[10:12], uint16(len(segment)))
	partial := uint32(0)
	for i := 0; i < 12; i += 2 {
		partial += uint32(binary.BigEndian.Uint16(pseudo[i : i+2]))
	}
	return Checksum(segment, partial), nil
}

// VerifyTransportChecksum reports whether the checksum embedded in a received
// TCP/UDP segment is valid for the given addresses.
func VerifyTransportChecksum(src, dst netip.Addr, proto IPProtocol, segment []byte) bool {
	sum, err := transportChecksum(src, dst, proto, segment)
	if err != nil {
		return false
	}
	// Checksumming data that already includes a correct checksum yields 0.
	return sum == 0
}
