package wire

import (
	"bytes"
	"net/netip"
	"testing"
	"testing/quick"
)

var (
	srcAddr = netip.MustParseAddr("192.0.2.1")
	dstAddr = netip.MustParseAddr("198.51.100.7")
)

func TestChecksumRFC1071Example(t *testing.T) {
	// Classic example from RFC 1071 §3.
	data := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := Checksum(data, 0); got != ^uint16(0xddf2) {
		t.Fatalf("Checksum = %#x, want %#x", got, ^uint16(0xddf2))
	}
}

func TestChecksumOddLength(t *testing.T) {
	even := Checksum([]byte{0xab, 0x00}, 0)
	odd := Checksum([]byte{0xab}, 0)
	if even != odd {
		t.Fatalf("odd-length padding mismatch: %#x vs %#x", odd, even)
	}
}

func TestIPv4RoundTrip(t *testing.T) {
	ip := IPv4{
		TOS: 0x10, ID: 0x1234, Flags: FlagDF, TTL: 64,
		Protocol: IPProtocolTCP, Src: srcAddr, Dst: dstAddr,
	}
	payload := []byte("hello")
	pkt, err := ip.AppendTo(nil, len(payload))
	if err != nil {
		t.Fatal(err)
	}
	pkt = append(pkt, payload...)
	var got IPv4
	rest, err := got.DecodeFromBytes(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if got.Src != srcAddr || got.Dst != dstAddr || got.TTL != 64 ||
		got.Protocol != IPProtocolTCP || got.ID != 0x1234 || got.Flags != FlagDF {
		t.Fatalf("decoded header mismatch: %+v", got)
	}
	if !bytes.Equal(rest, payload) {
		t.Fatalf("payload = %q, want %q", rest, payload)
	}
	if got.Length != uint16(20+len(payload)) {
		t.Fatalf("Length = %d, want %d", got.Length, 20+len(payload))
	}
}

func TestIPv4HeaderChecksumValid(t *testing.T) {
	ip := IPv4{TTL: 64, Protocol: IPProtocolUDP, Src: srcAddr, Dst: dstAddr}
	pkt, err := ip.AppendTo(nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Checksumming a header containing its own checksum yields zero.
	if got := Checksum(pkt[:20], 0); got != 0 {
		t.Fatalf("header checksum verify = %#x, want 0", got)
	}
}

func TestIPv4DecodeErrors(t *testing.T) {
	var ip IPv4
	if _, err := ip.DecodeFromBytes(make([]byte, 10)); err != ErrTruncated {
		t.Fatalf("short packet err = %v, want ErrTruncated", err)
	}
	bad := make([]byte, 20)
	bad[0] = 0x65 // version 6
	if _, err := ip.DecodeFromBytes(bad); err == nil {
		t.Fatal("wrong version accepted")
	}
	bad[0] = 0x41 // IHL 1 (4 bytes)
	if _, err := ip.DecodeFromBytes(bad); err == nil {
		t.Fatal("tiny IHL accepted")
	}
}

func TestIPv4RejectsNonIPv4Addrs(t *testing.T) {
	ip := IPv4{Src: netip.MustParseAddr("::1"), Dst: dstAddr, Protocol: IPProtocolTCP}
	if _, err := ip.AppendTo(nil, 0); err == nil {
		t.Fatal("IPv6 source accepted")
	}
}

func TestTCPRoundTrip(t *testing.T) {
	tcp := TCP{
		SrcPort: 40000, DstPort: 443, Seq: 0xdeadbeef, Ack: 0x01020304,
		Flags: FlagSYN, Window: 64240,
		Options: linuxSYNOptions(),
	}
	payload := []byte("GET /")
	seg, err := tcp.AppendTo(nil, srcAddr, dstAddr, payload)
	if err != nil {
		t.Fatal(err)
	}
	var got TCP
	rest, err := got.DecodeFromBytes(seg)
	if err != nil {
		t.Fatal(err)
	}
	if got.SrcPort != 40000 || got.DstPort != 443 || got.Seq != 0xdeadbeef ||
		got.Ack != 0x01020304 || got.Flags != FlagSYN || got.Window != 64240 {
		t.Fatalf("decoded TCP mismatch: %+v", got)
	}
	if !bytes.Equal(rest, payload) {
		t.Fatalf("payload = %q, want %q", rest, payload)
	}
	if len(got.Options) != 5 {
		t.Fatalf("options = %d, want 5", len(got.Options))
	}
	if got.Options[0].Kind != TCPOptMSS || !bytes.Equal(got.Options[0].Data, []byte{0x05, 0xb4}) {
		t.Fatalf("MSS option = %+v", got.Options[0])
	}
}

func TestTCPChecksumVerifies(t *testing.T) {
	tcp := TCP{SrcPort: 1, DstPort: 2, Flags: FlagACK}
	seg, err := tcp.AppendTo(nil, srcAddr, dstAddr, []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if !VerifyTransportChecksum(srcAddr, dstAddr, IPProtocolTCP, seg) {
		t.Fatal("valid checksum rejected")
	}
	seg[len(seg)-1] ^= 0xFF
	if VerifyTransportChecksum(srcAddr, dstAddr, IPProtocolTCP, seg) {
		t.Fatal("corrupted segment accepted")
	}
}

func TestTCPDecodeErrors(t *testing.T) {
	var tcp TCP
	if _, err := tcp.DecodeFromBytes(make([]byte, 10)); err != ErrTruncated {
		t.Fatalf("short segment err = %v", err)
	}
	bad := make([]byte, 20)
	bad[12] = 0x30 // data offset 12 bytes < 20
	if _, err := tcp.DecodeFromBytes(bad); err == nil {
		t.Fatal("bad data offset accepted")
	}
	bad[12] = 0x60 // offset 24 but only 20 bytes
	if _, err := tcp.DecodeFromBytes(bad); err != ErrTruncated {
		t.Fatalf("truncated options err = %v", err)
	}
}

func TestTCPMalformedOption(t *testing.T) {
	tcp := TCP{SrcPort: 1, DstPort: 2}
	seg, err := tcp.AppendTo(nil, srcAddr, dstAddr, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Craft a segment with data offset 24 and an option claiming length 9
	// with only 4 option bytes present.
	seg = append(seg[:20], 2, 9, 0, 0)
	seg[12] = 0x60
	var got TCP
	if _, err := got.DecodeFromBytes(seg); err == nil {
		t.Fatal("oversized option length accepted")
	}
}

func TestUDPRoundTrip(t *testing.T) {
	udp := UDP{SrcPort: 53000, DstPort: 53}
	payload := []byte{0x12, 0x34}
	seg, err := udp.AppendTo(nil, srcAddr, dstAddr, payload)
	if err != nil {
		t.Fatal(err)
	}
	var got UDP
	rest, err := got.DecodeFromBytes(seg)
	if err != nil {
		t.Fatal(err)
	}
	if got.SrcPort != 53000 || got.DstPort != 53 || got.Length != 10 {
		t.Fatalf("decoded UDP mismatch: %+v", got)
	}
	if !bytes.Equal(rest, payload) {
		t.Fatalf("payload = %v, want %v", rest, payload)
	}
	if !VerifyTransportChecksum(srcAddr, dstAddr, IPProtocolUDP, seg) {
		t.Fatal("UDP checksum invalid")
	}
}

func TestUDPLengthValidation(t *testing.T) {
	var udp UDP
	seg := []byte{0, 1, 0, 2, 0, 3, 0, 0} // length 3 < 8
	if _, err := udp.DecodeFromBytes(seg); err == nil {
		t.Fatal("undersized UDP length accepted")
	}
}

func TestEthernetRoundTrip(t *testing.T) {
	e := Ethernet{
		Dst:  [6]byte{1, 2, 3, 4, 5, 6},
		Src:  [6]byte{0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0xff},
		Type: EtherTypeIPv4,
	}
	frame := e.AppendTo(nil)
	frame = append(frame, 0x45)
	var got Ethernet
	rest, err := got.DecodeFromBytes(frame)
	if err != nil {
		t.Fatal(err)
	}
	if got != e {
		t.Fatalf("decoded = %+v, want %+v", got, e)
	}
	if len(rest) != 1 || rest[0] != 0x45 {
		t.Fatalf("payload = %v", rest)
	}
}

func TestEthernetTruncated(t *testing.T) {
	var e Ethernet
	if _, err := e.DecodeFromBytes(make([]byte, 13)); err != ErrTruncated {
		t.Fatalf("err = %v, want ErrTruncated", err)
	}
}

func TestTCPFlagsString(t *testing.T) {
	if s := (FlagSYN | FlagACK).String(); s != "SYN|ACK" {
		t.Fatalf("String() = %q, want SYN|ACK", s)
	}
	if s := TCPFlags(0).String(); s != "none" {
		t.Fatalf("String() = %q, want none", s)
	}
}

func TestTCPRoundTripQuick(t *testing.T) {
	f := func(sport, dport uint16, seq, ack uint32, flags uint8, payload []byte) bool {
		tcp := TCP{SrcPort: sport, DstPort: dport, Seq: seq, Ack: ack,
			Flags: TCPFlags(flags & 0x3F), Window: 1024}
		seg, err := tcp.AppendTo(nil, srcAddr, dstAddr, payload)
		if err != nil {
			return len(payload) > 0xFFFF-20
		}
		var got TCP
		rest, err := got.DecodeFromBytes(seg)
		if err != nil {
			return false
		}
		return got.SrcPort == sport && got.DstPort == dport &&
			got.Seq == seq && got.Ack == ack &&
			got.Flags == TCPFlags(flags&0x3F) && bytes.Equal(rest, payload) &&
			VerifyTransportChecksum(srcAddr, dstAddr, IPProtocolTCP, seg)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
