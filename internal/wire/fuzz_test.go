package wire

import (
	"net/netip"
	"reflect"
	"testing"
)

// fuzzSrc/fuzzDst are the pseudo-header addresses used when re-encoding
// transport headers the decoder accepted.
var (
	fuzzSrc = netip.MustParseAddr("10.0.0.1")
	fuzzDst = netip.MustParseAddr("10.0.0.2")
)

// FuzzDecode feeds raw bytes through the full decode stack — Ethernet, then
// IPv4, then TCP and UDP — asserting the decoders never panic and that any
// header they accept survives a re-encode/re-decode round trip with its
// meaningful fields intact.
func FuzzDecode(f *testing.F) {
	// Seed with well-formed frames produced by the encoders themselves plus
	// assorted malformed prefixes.
	eth := Ethernet{Dst: [6]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff},
		Src: [6]byte{2, 0, 0, 0, 0, 1}, Type: EtherTypeIPv4}
	frame := eth.AppendTo(nil)
	ip := IPv4{TTL: 64, Protocol: IPProtocolTCP, Src: fuzzSrc, Dst: fuzzDst, Flags: FlagDF}
	tcp := TCP{SrcPort: 43210, DstPort: 443, Seq: 1, Flags: FlagSYN, Window: 65535,
		Options: []TCPOption{{Kind: TCPOptMSS, Data: []byte{0x05, 0xb4}}, {Kind: TCPOptNOP}}}
	seg, err := tcp.AppendTo(nil, fuzzSrc, fuzzDst, nil)
	if err != nil {
		f.Fatal(err)
	}
	ipb, err := ip.AppendTo(frame, len(seg))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(append(ipb, seg...))

	udp := UDP{SrcPort: 53000, DstPort: 123}
	useg, err := udp.AppendTo(nil, fuzzSrc, fuzzDst, []byte("ntp?"))
	if err != nil {
		f.Fatal(err)
	}
	ipu := IPv4{TTL: 64, Protocol: IPProtocolUDP, Src: fuzzSrc, Dst: fuzzDst}
	ipub, err := ipu.AppendTo(eth.AppendTo(nil), len(useg))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(append(ipub, useg...))

	f.Add([]byte{})
	f.Add([]byte{0x45})
	f.Add(frame)                             // Ethernet only, no payload
	f.Add(append(frame, 0x60, 0, 0, 0))      // IPv6 version nibble
	f.Add(append(frame, 0x4f, 0, 0, 20))     // IHL beyond data
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8}) // short UDP

	f.Fuzz(func(t *testing.T, data []byte) {
		var e Ethernet
		ippay, err := e.DecodeFromBytes(data)
		if err != nil {
			return
		}
		// Accepted Ethernet headers round-trip exactly.
		var e2 Ethernet
		if _, err := e2.DecodeFromBytes(e.AppendTo(nil)); err != nil || e2 != e {
			t.Fatalf("ethernet round trip: %+v vs %+v (%v)", e, e2, err)
		}

		var ip IPv4
		tpay, err := ip.DecodeFromBytes(ippay)
		if err != nil {
			return
		}
		reenc, err := ip.AppendTo(nil, len(tpay))
		if err == nil {
			var ip2 IPv4
			if _, err := ip2.DecodeFromBytes(append(reenc, tpay...)); err != nil {
				t.Fatalf("re-decode of re-encoded IPv4 failed: %v", err)
			}
			if ip2.TOS != ip.TOS || ip2.ID != ip.ID || ip2.Flags != ip.Flags ||
				ip2.FragOff != ip.FragOff || ip2.TTL != ip.TTL ||
				ip2.Protocol != ip.Protocol || ip2.Src != ip.Src || ip2.Dst != ip.Dst {
				t.Fatalf("IPv4 round trip changed fields: %+v vs %+v", ip, ip2)
			}
		}

		switch ip.Protocol {
		case IPProtocolTCP:
			var tc TCP
			payload, err := tc.DecodeFromBytes(tpay)
			if err != nil {
				return
			}
			reenc, err := tc.AppendTo(nil, fuzzSrc, fuzzDst, payload)
			if err != nil {
				// Only over-long reassembled options may refuse to encode.
				if tc.optionsLen() <= 40 {
					t.Fatalf("re-encode of accepted TCP failed: %v", err)
				}
				return
			}
			var tc2 TCP
			pay2, err := tc2.DecodeFromBytes(reenc)
			if err != nil {
				t.Fatalf("re-decode of re-encoded TCP failed: %v", err)
			}
			if tc2.SrcPort != tc.SrcPort || tc2.DstPort != tc.DstPort ||
				tc2.Seq != tc.Seq || tc2.Ack != tc.Ack || tc2.Flags != tc.Flags ||
				tc2.Window != tc.Window || tc2.Urgent != tc.Urgent ||
				!reflect.DeepEqual(tc2.Options, tc.Options) {
				t.Fatalf("TCP round trip changed fields: %+v vs %+v", tc, tc2)
			}
			if string(pay2) != string(payload) {
				t.Fatal("TCP round trip changed payload")
			}
			if !VerifyTransportChecksum(fuzzSrc, fuzzDst, IPProtocolTCP, reenc) {
				t.Fatal("re-encoded TCP checksum does not verify")
			}
		case IPProtocolUDP:
			var u UDP
			payload, err := u.DecodeFromBytes(tpay)
			if err != nil {
				return
			}
			reenc, err := u.AppendTo(nil, fuzzSrc, fuzzDst, payload)
			if err != nil {
				t.Fatalf("re-encode of accepted UDP failed: %v", err)
			}
			var u2 UDP
			if _, err := u2.DecodeFromBytes(reenc); err != nil {
				t.Fatalf("re-decode of re-encoded UDP failed: %v", err)
			}
			if u2.SrcPort != u.SrcPort || u2.DstPort != u.DstPort || u2.Length != u.Length {
				t.Fatalf("UDP round trip changed fields: %+v vs %+v", u, u2)
			}
		}
	})
}
