GO ?= go

.PHONY: all vet build test race bench check

all: check

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The pipeline fans interrogation out over worker pools; the race detector
# is part of the standard check, not an extra.
race:
	$(GO) test -race ./...

# Serial vs sharded pipeline throughput (1/4/8 workers).
bench:
	$(GO) test -run '^$$' -bench BenchmarkPipelineThroughput -benchtime 2x .

check: vet build race
