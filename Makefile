GO ?= go

.PHONY: all vet lint build test race chaos chaos-disk cluster-diff fsck fuzz bench bench-search bench-json bench-delta serve-test loadgen predict-diff adversarial check

all: check

vet:
	$(GO) vet ./...

# vet plus the repo's clock-discipline check: pipeline code reads time
# through simclock.Clock only (time.Now is allowed in simclock's Real
# implementation, socket deadlines, cmd/, and tests) so instrumented runs
# stay deterministic.
lint: vet
	$(GO) run ./cmd/lintclock .

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The pipeline fans interrogation out over worker pools; the race detector
# is part of the standard check, not an extra. The eval lab replays months
# of simulated scanning and needs more than go test's default 10m package
# timeout once the race detector's ~10x slowdown is on it.
race:
	$(GO) test -race -timeout 45m ./...

# The deterministic chaos suite: fault injection, crash-recovery
# differentials, and the facade-level recovery test, under the race
# detector (the injector and retry buffers sit on the hot concurrent path).
chaos:
	$(GO) test -race ./internal/chaos/ ./internal/core/ ./internal/cqrs/
	$(GO) test -race . -run TestSystemCrashRecoveryUnderChaos

# The disk-fault differential suite: crash a run to real segment files,
# corrupt them deterministically (bit flips, torn tails, truncations, missing
# files, stale checkpoint hints), and require recovery to come back either
# bit-identical or degraded with exactly the condemned partitions quarantined.
chaos-disk:
	$(GO) test -race ./internal/chaos/ \
		-run 'TestDiskCrashResumeCleanRoundTrip|TestDiskFaultDifferential|TestFsckDetectsInjectedCorruption|TestStorageTelemetryDeterministic'

# The cluster differential suite: replicated multi-node runs (several node
# counts, several chaos seeds, quorum-preserving node kills/rejoins) must be
# externally bit-identical to the serial pipeline — dataset, journal,
# per-partition replica state, follower-read answers — plus the degraded
# HTTP surface and metric determinism, under the race detector.
cluster-diff:
	$(GO) test -race ./internal/cluster/ ./internal/chaos/ \
		-run 'TestClusterDifferential|TestClusterDegradedSurface|TestClusterTelemetryDeterministic|TestNodeFaultSchedule'

# Offline store verification: the storage engine's unit + golden-fixture
# tests, then censysfsck over the committed corrupted stores — it must flag
# both (exit 1), proving the operator tool sees what recovery sees.
fsck:
	$(GO) test ./internal/durable/
	! $(GO) run ./cmd/censysfsck -dir internal/durable/testdata/store_repairable
	! $(GO) run ./cmd/censysfsck -dir internal/durable/testdata/store_quarantine -json

# Short coverage-guided fuzzing: the three parsers that face untrusted
# bytes, plus the search differential (random queries against a naive
# reference evaluator, serial and partitioned engines must agree). Seed
# corpora also run as part of plain `make test`.
fuzz:
	$(GO) test ./internal/fingerdsl/ -fuzz FuzzParse -fuzztime 30s
	$(GO) test ./internal/search/ -fuzz FuzzParseQuery -fuzztime 30s
	$(GO) test ./internal/search/ -fuzz FuzzSearchDifferential -fuzztime 30s
	$(GO) test ./internal/wire/ -fuzz FuzzDecode -fuzztime 30s
	$(GO) test ./internal/durable/ -fuzz FuzzSegmentDecode -fuzztime 30s
	$(GO) test ./internal/serve/ -fuzz FuzzDecodeCursor -fuzztime 30s
	$(GO) test ./internal/predict/ -fuzz FuzzPrefixExclusion -fuzztime 30s
	$(GO) test ./internal/simnet/ -fuzz FuzzScenarioDecode -fuzztime 30s

# The serving-tier suite: HTTP conformance goldens over every /v2 route,
# the export byte-stability differential (writes interleaved between pages),
# deterministic rate-limit/quota/shed accounting, and the bounded-allocation
# regression for limited search — all under the race detector.
serve-test:
	$(GO) test -race ./internal/serve/
	$(GO) test -race ./internal/lookup/ -run 'TestSearchBoundedAllocation|TestPlacement'

# Deterministic open-loop load generation against the assembled system:
# seeded Zipf query mix, simclock arrivals, QPS sweep to the max sustainable
# level; serial then 3-node cluster, results merged into BENCH_<date>.json.
loadgen:
	$(GO) run ./cmd/loadgen -bench-dir .
	$(GO) run ./cmd/loadgen -bench-dir . -cluster-nodes 3

# Serial vs sharded pipeline throughput (1/4/8 workers).
bench:
	$(GO) test -run '^$$' -bench BenchmarkPipelineThroughput -benchtime 2x .

# Read-path query engine benchmarks (the EXPERIMENTS.md "Read path" table).
bench-search:
	$(GO) test -run '^$$' -bench 'BenchmarkSearch|BenchmarkIndexUpsert' \
		-benchmem -benchtime 20x ./internal/search/

# Machine-readable benchmark snapshot: pipeline throughput (serial, sharded,
# sharded+telemetry, 1/3-node cluster replication overhead) and search
# latency, written to BENCH_<date>.json so the perf trajectory diffs across
# PRs.
bench-json:
	$(GO) run ./cmd/benchtables -bench-json
	$(GO) run ./cmd/loadgen -bench-dir .
	$(GO) run ./cmd/loadgen -bench-dir . -cluster-nodes 3

# The predictive-scanning suite: the GPS-style scheduler's determinism and
# crash differentials (model, topology cursors, cooldown book, and budget
# ledger must survive a kill at any tick bit-identically), the wire-level
# exclusion invariant, and the equal-budget predictive-vs-exhaustive replay
# that gates on strictly more services per probe on every profile.
predict-diff:
	$(GO) test -race ./internal/chaos/ -run 'Predictive'
	$(GO) test ./internal/eval/ -run 'PredictDiff'
	$(GO) test ./internal/predict/ ./internal/discovery/

# The adversarial scenario suite: hostile-substrate generation and scenario
# codec under the race detector, interrogation deadline budgets against
# tarpits (including pool liveness at 100% tarpit density), honeypot-farm
# uniformity flagging, adaptive backoff + scanner rotation, the chaos
# differentials over a hostile seed (same-seed, layout invariance,
# kill/resume), and the per-engine mislabel/blocking/freshness replay.
adversarial:
	$(GO) test -race ./internal/simnet/ ./internal/interro/ ./internal/protocols/ ./internal/discovery/
	$(GO) test -race ./internal/core/ -run 'Tarpit|Honeypot|Pseudo'
	$(GO) test -race ./internal/chaos/ -run 'Adversarial'
	$(GO) test ./internal/eval/ -run 'Adversarial'

# Perf-regression gate: diff the newest working-tree BENCH_<date>.json
# against the version committed at HEAD; fail on >15% ns/op or any allocs/op
# regression. In `make check` the target is advisory (leading `-`): timing on
# shared single-core CI is too noisy to hard-fail the gate, but the report is
# printed for review.
bench-delta:
	@f=$$(ls BENCH_*.json 2>/dev/null | sort | tail -1); \
	if [ -z "$$f" ]; then echo "bench-delta: no BENCH_*.json in working tree"; exit 0; fi; \
	if ! git show HEAD:$$f > .bench_head.json 2>/dev/null; then \
		echo "bench-delta: $$f not committed at HEAD; nothing to diff"; rm -f .bench_head.json; exit 0; fi; \
	$(GO) run ./cmd/benchdelta -old .bench_head.json -new $$f; st=$$?; rm -f .bench_head.json; exit $$st

check: lint build race chaos chaos-disk cluster-diff fsck serve-test predict-diff adversarial
	-$(MAKE) bench-delta
