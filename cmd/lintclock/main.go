// Command lintclock enforces the repo's clock discipline: pipeline code must
// read time through simclock.Clock, never time.Now, so instrumented and
// chaos-tested runs stay deterministic. It parses every non-test .go file
// and reports each time.Now call outside the exempt set:
//
//   - internal/simclock/simclock.go  (the Real clock implementation)
//   - internal/protocols/conn.go     (socket deadlines need wall time)
//   - the listed cmd/ binaries       (operator binaries run on wall clocks)
//   - *_test.go                      (tests may time themselves)
//
// The cmd/ exemption is a named allowlist, not a blanket: adding a binary
// means adding it here, so a new command does not silently opt out of the
// clock discipline.
//
// Exit status 1 with a file:line listing when violations exist; silent 0
// otherwise. Run via `make lint`.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
)

// exemptFiles are the only non-cmd, non-test files allowed to call time.Now.
var exemptFiles = map[string]bool{
	"internal/simclock/simclock.go": true,
	"internal/protocols/conn.go":    true,
}

// exemptCmds are the operator binaries allowed to run on the wall clock.
var exemptCmds = map[string]bool{
	"cmd/benchtables": true,
	"cmd/censysd":     true,
	"cmd/censysfsck":  true,
	"cmd/censysql":    true,
	"cmd/lintclock":   true,
	"cmd/loadgen":     true,
}

func exempt(rel string) bool {
	if exemptFiles[rel] {
		return true
	}
	if strings.HasSuffix(rel, "_test.go") {
		return true
	}
	parts := strings.SplitN(rel, string(filepath.Separator), 3)
	if len(parts) >= 2 && exemptCmds[parts[0]+"/"+parts[1]] {
		return true
	}
	return parts[0] == ".git"
}

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	fset := token.NewFileSet()
	var violations []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, rerr := filepath.Rel(root, path)
		if rerr != nil {
			return rerr
		}
		if d.IsDir() {
			if exempt(rel) && rel != "." {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || exempt(rel) {
			return nil
		}
		f, perr := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution)
		if perr != nil {
			return perr
		}
		// Resolve what identifier the "time" package is imported under; a
		// file that never imports time cannot call time.Now.
		timeName := ""
		for _, imp := range f.Imports {
			if strings.Trim(imp.Path.Value, `"`) != "time" {
				continue
			}
			timeName = "time"
			if imp.Name != nil {
				timeName = imp.Name.Name
			}
		}
		if timeName == "" || timeName == "_" {
			return nil
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Now" {
				return true
			}
			if id, ok := sel.X.(*ast.Ident); ok && id.Name == timeName {
				violations = append(violations,
					fmt.Sprintf("%s: time.Now outside simclock", fset.Position(sel.Pos())))
			}
			return true
		})
		return nil
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "lintclock:", err)
		os.Exit(2)
	}
	if len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintln(os.Stderr, v)
		}
		fmt.Fprintf(os.Stderr, "lintclock: %d violation(s); pipeline code must use simclock.Clock\n",
			len(violations))
		os.Exit(1)
	}
}
