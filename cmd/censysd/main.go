// Command censysd runs the full pipeline against a synthetic Internet and
// serves the lookup REST API:
//
//	censysd -universe 10.0.0.0/20 -days 3 -listen :8181
//
// It fast-forwards the simulated clock through the warmup, then keeps
// advancing simulated time in the background (1 simulated minute per real
// second by default) while serving queries:
//
//	curl localhost:8181/v2/hosts/10.0.1.7
//	curl localhost:8181/v2/hosts/10.0.1.7/history
//	curl localhost:8181/v2/certificates/<sha256>/hosts
//
// The /v2 surface is fronted by the serving tier: per-tenant API keys
// (-api-keys name:key:tier), token-bucket rate limits and daily quotas per
// tier, priority-aware load shedding (-capacity), snapshot-pinned bulk
// export under /v2/export/hosts, and ETag conditional GETs. Unauthenticated
// requests are served under -anonymous-tier (default free); set it empty to
// require a key.
//
// With -scenario the synthetic Internet turns hostile: a named preset
// (honeyfarm, tarpit, detector, churn, full) or key=value pairs
// (honeypot_farms=2,tarpit_rate=0.1) overlay honeypot farms, tarpits, scan
// detectors, and banner churn on the universe, and the pipeline's
// countermeasures (deadline budgets, adaptive backoff, honeypot uniformity
// detection) default on.
//
// With -cluster-nodes N the process simulates an N-node serving cluster:
// journal partitions replicate to per-node replica journals, point lookups
// route to the partition's lease holder (X-Censys-Serving-Node names it),
// and quorum health surfaces in X-Censys-Degraded. -node-id picks which
// node this process front-ends for identification in logs.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"net/netip"
	"os"
	"strings"
	"time"

	"censysmap"
	"censysmap/internal/cluster"
	"censysmap/internal/serve"
	"censysmap/internal/simnet"
)

// parseTenants parses the -api-keys flag: comma-separated name:key:tier
// entries, e.g. "alice:s3cret:standard,bench:hunter2:internal".
func parseTenants(raw string) ([]serve.Tenant, error) {
	if raw == "" {
		return nil, nil
	}
	var out []serve.Tenant
	for _, entry := range strings.Split(raw, ",") {
		parts := strings.Split(entry, ":")
		if len(parts) != 3 {
			return nil, fmt.Errorf("bad -api-keys entry %q (want name:key:tier)", entry)
		}
		out = append(out, serve.Tenant{Name: parts[0], Key: parts[1], Tier: parts[2]})
	}
	return out, nil
}

func main() {
	universe := flag.String("universe", "10.0.0.0/20", "IPv4 universe prefix")
	days := flag.Int("days", 2, "simulated days to warm up before serving")
	listen := flag.String("listen", ":8181", "REST API listen address")
	seed := flag.Uint64("seed", 1, "universe seed")
	rate := flag.Duration("rate", time.Minute, "simulated time advanced per real second")
	clusterNodes := flag.Int("cluster-nodes", 0, "simulate an N-node serving cluster (0 = single-process)")
	nodeID := flag.Int("node-id", 0, "node this process identifies as (requires -cluster-nodes)")
	apiKeys := flag.String("api-keys", "",
		"serving-tier tenants, comma-separated name:key:tier (tiers: free, standard, enterprise, internal)")
	anonTier := flag.String("anonymous-tier", "free",
		"tier unauthenticated requests are served under; empty requires an API key (401)")
	capacity := flag.Int("capacity", 64,
		"max concurrently admitted requests; load shedding starts at half this")
	pprofAddr := flag.String("pprof", "",
		"side listener exposing net/http/pprof (e.g. localhost:6060); empty disables")
	predict := flag.Bool("predict", true,
		"GPS-style predictive scanning: seed scan, cross-port model, predicted targets")
	predictBudget := flag.Int("predict-budget", 0,
		"predictive probes per scheduling tick (0 = pipeline default; requires -predict)")
	scenario := flag.String("scenario", "",
		"adversarial scenario: a preset ("+strings.Join(simnet.ScenarioNames(), ", ")+
			") or key=value pairs like honeypot_farms=2,tarpit_rate=0.1 (empty = benign)")
	flag.Parse()

	// The profiler gets its own listener and mux so /debug/pprof/ never
	// shares a port with the public API surface (it bypasses the serving
	// tier's auth and admission control by design — bind it to localhost).
	if *pprofAddr != "" {
		pmux := http.NewServeMux()
		pmux.HandleFunc("/debug/pprof/", pprof.Index)
		pmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			if err := http.ListenAndServe(*pprofAddr, pmux); err != nil {
				fmt.Fprintln(os.Stderr, "pprof listener:", err)
			}
		}()
		fmt.Printf("pprof on http://%s/debug/pprof/\n", *pprofAddr)
	}

	prefix, err := netip.ParsePrefix(*universe)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bad -universe:", err)
		os.Exit(2)
	}
	sys, err := censysmap.NewSystem(censysmap.Options{Universe: prefix, Seed: *seed,
		DisablePrediction: !*predict, PredictBudgetPerTick: *predictBudget,
		Scenario: *scenario})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *scenario != "" {
		st := sys.Internet().AdversaryStats()
		fmt.Printf("scenario %q: %d farms (%d honeypots), %d tarpits (%d drip), %d detector /24s, %d churn hosts\n",
			*scenario, st.Farms, st.HoneypotHosts, st.TarpitHosts, st.DripTarpits,
			st.DetectorNets, st.ChurnHosts)
	}

	var cl *cluster.Cluster
	if *clusterNodes > 0 {
		if *nodeID < 0 || *nodeID >= *clusterNodes {
			fmt.Fprintf(os.Stderr, "bad -node-id: %d outside 0..%d\n", *nodeID, *clusterNodes-1)
			os.Exit(2)
		}
		cl, err = cluster.New(sys.Map(), cluster.Config{
			Nodes:     *clusterNodes,
			Telemetry: sys.Metrics(),
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	// advance moves simulated time, driving a replication round around each
	// advance when clustered.
	advance := func(d time.Duration) {
		if cl == nil {
			sys.Run(d)
			return
		}
		if err := cl.Step(func() { sys.Run(d) }); err != nil {
			fmt.Fprintln(os.Stderr, "replication:", err)
			os.Exit(1)
		}
	}

	fmt.Printf("universe %v: %d hosts; warming up %d simulated days...\n",
		prefix, sys.Internet().Hosts(), *days)
	start := time.Now()
	advance(time.Duration(*days) * 24 * time.Hour)
	fmt.Printf("warmup done in %v: %d services mapped, %d web properties, sim time %v\n",
		time.Since(start).Round(time.Millisecond), len(sys.Services()),
		len(sys.WebProperties()), sys.Now().Format(time.RFC3339))
	if cl != nil {
		st := cl.Stats()
		fmt.Printf("cluster: %d nodes, serving as %s; %d partitions replicated, %d records shipped\n",
			cl.Nodes(), cl.NodeName(*nodeID), cl.Partitions(), st.RecordsShipped)
	}

	// Keep simulated time flowing while serving. Queries route through the
	// placement on every request, so each advance's replication round is
	// immediately visible.
	go func() {
		for range time.Tick(time.Second) {
			advance(*rate)
		}
	}()

	tenants, err := parseTenants(*apiKeys)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	front, err := sys.Frontend(serve.Config{
		Tenants:       tenants,
		AnonymousTier: *anonTier,
		Capacity:      *capacity,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	mux := http.NewServeMux()
	mux.Handle("/v2/", front)
	mux.HandleFunc("GET /v1/search", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query().Get("q")
		hosts, err := sys.Search(q)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		fmt.Fprintf(w, "%d hosts\n", len(hosts))
		for _, h := range hosts {
			fmt.Fprintf(w, "%s\n", h.IP)
		}
	})
	fmt.Printf("serving on %s\n", *listen)
	if err := http.ListenAndServe(*listen, mux); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
