// Command censysd runs the full pipeline against a synthetic Internet and
// serves the lookup REST API:
//
//	censysd -universe 10.0.0.0/20 -days 3 -listen :8181
//
// It fast-forwards the simulated clock through the warmup, then keeps
// advancing simulated time in the background (1 simulated minute per real
// second by default) while serving queries:
//
//	curl localhost:8181/v2/hosts/10.0.1.7
//	curl localhost:8181/v2/hosts/10.0.1.7/history
//	curl localhost:8181/v2/certificates/<sha256>/hosts
package main

import (
	"flag"
	"fmt"
	"net/http"
	"net/netip"
	"os"
	"time"

	"censysmap"
)

func main() {
	universe := flag.String("universe", "10.0.0.0/20", "IPv4 universe prefix")
	days := flag.Int("days", 2, "simulated days to warm up before serving")
	listen := flag.String("listen", ":8181", "REST API listen address")
	seed := flag.Uint64("seed", 1, "universe seed")
	rate := flag.Duration("rate", time.Minute, "simulated time advanced per real second")
	flag.Parse()

	prefix, err := netip.ParsePrefix(*universe)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bad -universe:", err)
		os.Exit(2)
	}
	sys, err := censysmap.NewSystem(censysmap.Options{Universe: prefix, Seed: *seed})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("universe %v: %d hosts; warming up %d simulated days...\n",
		prefix, sys.Internet().Hosts(), *days)
	start := time.Now()
	sys.Run(time.Duration(*days) * 24 * time.Hour)
	fmt.Printf("warmup done in %v: %d services mapped, %d web properties, sim time %v\n",
		time.Since(start).Round(time.Millisecond), len(sys.Services()),
		len(sys.WebProperties()), sys.Now().Format(time.RFC3339))

	// Keep simulated time flowing while serving.
	go func() {
		for range time.Tick(time.Second) {
			sys.Run(*rate)
		}
	}()

	mux := http.NewServeMux()
	mux.Handle("/v2/", sys.APIHandler())
	mux.HandleFunc("GET /v1/search", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query().Get("q")
		hosts, err := sys.Search(q)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		fmt.Fprintf(w, "%d hosts\n", len(hosts))
		for _, h := range hosts {
			fmt.Fprintf(w, "%s\n", h.IP)
		}
	})
	fmt.Printf("serving on %s\n", *listen)
	if err := http.ListenAndServe(*listen, mux); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
