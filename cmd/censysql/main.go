// Command censysql builds a map of a synthetic universe and runs search
// queries against it — the interactive exploration surface of §5.3:
//
//	censysql 'services.service_name="MODBUS" and location.country="US"'
//	censysql -days 3 'labels: ics' 'services.port: [8000 TO 9000]'
//	echo 'services.tls: true' | censysql -
//
// Each matching host prints with its services, location, and derived labels.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"net/netip"
	"os"
	"strings"
	"time"

	"censysmap"
)

func main() {
	universe := flag.String("universe", "10.0.0.0/21", "IPv4 universe prefix")
	days := flag.Int("days", 2, "simulated days of scanning before querying")
	seed := flag.Uint64("seed", 1, "universe seed")
	verbose := flag.Bool("v", false, "print full service details")
	flag.Parse()

	prefix, err := netip.ParsePrefix(*universe)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bad -universe:", err)
		os.Exit(2)
	}
	sys, err := censysmap.NewSystem(censysmap.Options{Universe: prefix, Seed: *seed})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "mapping %v for %d simulated days...\n", prefix, *days)
	sys.Run(time.Duration(*days) * 24 * time.Hour)
	fmt.Fprintf(os.Stderr, "%d services mapped\n\n", len(sys.Services()))

	queries := flag.Args()
	if len(queries) == 1 && queries[0] == "-" {
		queries = nil
		sc := bufio.NewScanner(os.Stdin)
		for sc.Scan() {
			if q := strings.TrimSpace(sc.Text()); q != "" {
				queries = append(queries, q)
			}
		}
	}
	if len(queries) == 0 {
		fmt.Fprintln(os.Stderr, "usage: censysql [flags] <query> [<query>...]")
		os.Exit(2)
	}

	for _, q := range queries {
		hosts, err := sys.Search(q)
		if err != nil {
			fmt.Fprintf(os.Stderr, "query %q: %v\n", q, err)
			continue
		}
		fmt.Printf("> %s\n%d hosts\n", q, len(hosts))
		for _, h := range hosts {
			loc, asn := "", ""
			if h.Location != nil {
				loc = h.Location.Country
			}
			if h.AS != nil {
				asn = fmt.Sprintf("AS%d %s", h.AS.Number, h.AS.Org)
			}
			fmt.Printf("  %-15s %-3s %-28s labels=%v\n", h.IP, loc, asn, h.Labels)
			if *verbose {
				for _, svc := range h.ActiveServices() {
					fmt.Printf("    %-10s %-8s verified=%-5v %s\n",
						svc.Key(), svc.Protocol, svc.Verified, svc.Banner)
				}
			}
		}
		fmt.Println()
	}
}
