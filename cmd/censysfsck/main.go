// Command censysfsck verifies (and optionally repairs) a saved store
// directory offline, using the exact decode-and-recover path the pipeline
// runs at resume:
//
//	censysfsck -dir /var/lib/censys/store
//	censysfsck -dir /var/lib/censys/store -repair
//	censysfsck -dir /var/lib/censys/store -json | jq .findings
//
// Exit codes: 0 the store is clean (or every finding was repaired), 1 faults
// remain that recovery would quarantine or work around, 2 usage or an
// unreadable store.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"censysmap/internal/cqrs"
	"censysmap/internal/durable"
)

func main() {
	dir := flag.String("dir", "", "store directory to verify (required)")
	repair := flag.Bool("repair", false, "apply every provable fix in place")
	jsonOut := flag.Bool("json", false, "emit the report as JSON")
	flag.Parse()

	if *dir == "" {
		fmt.Fprintln(os.Stderr, "usage: censysfsck -dir <store> [-repair] [-json]")
		os.Exit(2)
	}
	rep, err := durable.Fsck(*dir, durable.FsckOptions{
		Rebuild: map[string]durable.SnapshotRebuilder{"journal": cqrs.RebuildSnapshotPayload},
		Repair:  *repair,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "censysfsck:", err)
		os.Exit(2)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintln(os.Stderr, "censysfsck:", err)
			os.Exit(2)
		}
	} else {
		fmt.Printf("generation %d: %d records verified\n", rep.Gen, rep.RecordsVerified)
		for _, f := range rep.Findings {
			loc := f.File
			if f.Record >= 0 {
				loc = fmt.Sprintf("%s record %d", loc, f.Record)
			}
			if f.Offset >= 0 {
				loc = fmt.Sprintf("%s offset %d", loc, f.Offset)
			}
			fmt.Printf("  %-12s %-20s %s", f.Fault, f.Action, loc)
			if f.Detail != "" {
				fmt.Printf(" (%s)", f.Detail)
			}
			fmt.Println()
		}
		for store, parts := range rep.Quarantined {
			fmt.Printf("  QUARANTINED  %s partitions %v\n", store, parts)
		}
		for _, p := range rep.Repaired {
			fmt.Printf("  repaired     %s\n", p)
		}
		if rep.Clean {
			fmt.Println("clean")
		}
	}

	if rep.Clean {
		return
	}
	// Repaired-only stores exit 0: a second pass would come back clean.
	if *repair && len(rep.Quarantined) == 0 {
		unrepaired := false
		for _, f := range rep.Findings {
			if f.Action == durable.ActionQuarantined {
				unrepaired = true
			}
		}
		if !unrepaired {
			return
		}
	}
	os.Exit(1)
}
