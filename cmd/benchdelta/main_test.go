package main

import "testing"

func fp(v float64) *float64 { return &v }

func TestCompareFlagsRegressions(t *testing.T) {
	old := benchDoc{Results: []benchResult{
		{Name: "a/fast", NsPerOp: 1000, AllocsPerOp: fp(10)},
		{Name: "b/zero", NsPerOp: 500, AllocsPerOp: fp(0)},
		{Name: "c/slow", NsPerOp: 2000, AllocsPerOp: fp(4)},
		{Name: "d/gone", NsPerOp: 100},
		{Name: "e/untimed", NsPerOp: 0, Metrics: map[string]float64{"qps": 9}},
	}}
	new := benchDoc{Results: []benchResult{
		{Name: "a/fast", NsPerOp: 1100, AllocsPerOp: fp(10)},  // +10%: within 15%
		{Name: "b/zero", NsPerOp: 510, AllocsPerOp: fp(1)},    // 0 -> 1 alloc: regression
		{Name: "c/slow", NsPerOp: 2400, AllocsPerOp: fp(4)},   // +20% ns: regression
		{Name: "e/untimed", NsPerOp: 0},                       // no timing on either side
		{Name: "f/new", NsPerOp: 50},
	}}
	byName := map[string]delta{}
	for _, d := range compare(old, new, 0.15) {
		byName[d.Name] = d
	}
	if len(byName) != 6 {
		t.Fatalf("got %d rows, want 6", len(byName))
	}
	if d := byName["a/fast"]; d.NsRegressed || d.AllocsRegressed {
		t.Fatalf("a/fast flagged: %+v", d)
	}
	if d := byName["b/zero"]; !d.AllocsRegressed {
		t.Fatal("b/zero: 0 -> 1 allocs must regress")
	} else if d.NsRegressed {
		t.Fatal("b/zero: +2% ns must not regress")
	}
	if d := byName["c/slow"]; !d.NsRegressed {
		t.Fatal("c/slow: +20% ns must regress")
	}
	if d := byName["d/gone"]; !d.OnlyOld {
		t.Fatal("d/gone must be OnlyOld")
	}
	if d := byName["e/untimed"]; d.NsRegressed {
		t.Fatal("untimed rows must not regress on ns")
	}
	if d := byName["f/new"]; !d.OnlyNew {
		t.Fatal("f/new must be OnlyNew")
	}
}

func TestRegressedZeroBaseline(t *testing.T) {
	if regressed(0, 0, 0.15) {
		t.Fatal("0 -> 0 is not a regression")
	}
	if !regressed(0, 0.01, 0.15) {
		t.Fatal("0 -> 0.01 is a regression")
	}
	if regressed(100, 114, 0.15) {
		t.Fatal("within threshold is not a regression")
	}
	if !regressed(100, 116, 0.15) {
		t.Fatal("beyond threshold is a regression")
	}
}
