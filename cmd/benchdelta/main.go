// Command benchdelta diffs two BENCH_<date>.json documents (cmd/benchtables
// -bench-json output) and fails when a row regressed beyond a threshold on
// ns/op or allocs/op. `make bench-delta` runs it against the committed
// baseline; `make check` includes it advisorily (a regression prints loudly
// but does not fail the gate, since single-core CI timing is noisy).
//
//	benchdelta -old BENCH_A.json -new BENCH_B.json [-threshold 0.15]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
)

type benchResult struct {
	Name        string             `json:"name"`
	Iterations  int                `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	AllocsPerOp *float64           `json:"allocs_per_op,omitempty"`
	BytesPerOp  *float64           `json:"bytes_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

type benchDoc struct {
	Date    string        `json:"date"`
	Results []benchResult `json:"results"`
}

// delta is one row's comparison across the two documents.
type delta struct {
	Name               string
	OldNs, NewNs       float64
	OldAllocs          *float64
	NewAllocs          *float64
	NsRegressed        bool
	AllocsRegressed    bool
	OnlyOld, OnlyNew   bool
	NsRatio, AllocsRat float64 // new/old; 0 when not comparable
}

// regressed reports whether new exceeds old by more than threshold
// (fractional). A measurement that was zero regresses on any increase:
// 0 allocs/op is a pinned invariant, not a ratio.
func regressed(old, new, threshold float64) bool {
	if old == 0 {
		return new > 0
	}
	return new > old*(1+threshold)
}

// compare pairs rows by name and flags regressions. Rows present in only one
// document are reported but never fail the run.
func compare(old, new benchDoc, threshold float64) []delta {
	oldBy := make(map[string]benchResult, len(old.Results))
	for _, r := range old.Results {
		oldBy[r.Name] = r
	}
	newBy := make(map[string]benchResult, len(new.Results))
	var out []delta
	for _, nr := range new.Results {
		newBy[nr.Name] = nr
		or, ok := oldBy[nr.Name]
		if !ok {
			out = append(out, delta{Name: nr.Name, NewNs: nr.NsPerOp, NewAllocs: nr.AllocsPerOp, OnlyNew: true})
			continue
		}
		d := delta{
			Name: nr.Name, OldNs: or.NsPerOp, NewNs: nr.NsPerOp,
			OldAllocs: or.AllocsPerOp, NewAllocs: nr.AllocsPerOp,
		}
		// Rows without timing (loadgen's max_sustainable_qps summary) carry
		// ns_per_op 0 on both sides; skip the ns comparison for those.
		if or.NsPerOp > 0 || nr.NsPerOp > 0 {
			d.NsRegressed = regressed(or.NsPerOp, nr.NsPerOp, threshold)
			if or.NsPerOp > 0 {
				d.NsRatio = nr.NsPerOp / or.NsPerOp
			}
		}
		if or.AllocsPerOp != nil && nr.AllocsPerOp != nil {
			d.AllocsRegressed = regressed(*or.AllocsPerOp, *nr.AllocsPerOp, threshold)
			if *or.AllocsPerOp > 0 {
				d.AllocsRat = *nr.AllocsPerOp / *or.AllocsPerOp
			}
		}
		out = append(out, d)
	}
	for _, or := range old.Results {
		if _, ok := newBy[or.Name]; !ok {
			out = append(out, delta{Name: or.Name, OldNs: or.NsPerOp, OldAllocs: or.AllocsPerOp, OnlyOld: true})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

func readDoc(path string) (benchDoc, error) {
	var doc benchDoc
	blob, err := os.ReadFile(path)
	if err != nil {
		return doc, err
	}
	if err := json.Unmarshal(blob, &doc); err != nil {
		return doc, fmt.Errorf("%s: %w", path, err)
	}
	return doc, nil
}

func fmtAllocs(a *float64) string {
	if a == nil {
		return "-"
	}
	return fmt.Sprintf("%.0f", *a)
}

func main() {
	oldPath := flag.String("old", "", "baseline BENCH_<date>.json")
	newPath := flag.String("new", "", "candidate BENCH_<date>.json")
	threshold := flag.Float64("threshold", 0.15,
		"fractional regression tolerance for ns/op and allocs/op")
	flag.Parse()
	if *oldPath == "" || *newPath == "" {
		fmt.Fprintln(os.Stderr, "usage: benchdelta -old A.json -new B.json [-threshold 0.15]")
		os.Exit(2)
	}
	oldDoc, err := readDoc(*oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdelta:", err)
		os.Exit(2)
	}
	newDoc, err := readDoc(*newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdelta:", err)
		os.Exit(2)
	}

	bad := 0
	for _, d := range compare(oldDoc, newDoc, *threshold) {
		switch {
		case d.OnlyNew:
			fmt.Printf("  NEW   %-44s %12.0f ns/op  %s allocs/op\n", d.Name, d.NewNs, fmtAllocs(d.NewAllocs))
		case d.OnlyOld:
			fmt.Printf("  GONE  %-44s was %12.0f ns/op\n", d.Name, d.OldNs)
		case d.NsRegressed || d.AllocsRegressed:
			bad++
			fmt.Printf("  REGR  %-44s %12.0f -> %.0f ns/op (%.2fx)  allocs %s -> %s\n",
				d.Name, d.OldNs, d.NewNs, d.NsRatio, fmtAllocs(d.OldAllocs), fmtAllocs(d.NewAllocs))
		default:
			fmt.Printf("  ok    %-44s %12.0f -> %.0f ns/op (%.2fx)  allocs %s -> %s\n",
				d.Name, d.OldNs, d.NewNs, d.NsRatio, fmtAllocs(d.OldAllocs), fmtAllocs(d.NewAllocs))
		}
	}
	if bad > 0 {
		fmt.Printf("benchdelta: %d row(s) regressed beyond %.0f%%\n", bad, *threshold*100)
		os.Exit(1)
	}
	fmt.Println("benchdelta: no regressions")
}
