// Command benchtables regenerates every table and figure of the paper's
// evaluation against the synthetic universe and prints them in the paper's
// layout. Run it with no flags for the full set, or select one:
//
//	benchtables                 # everything (builds one shared lab)
//	benchtables -table 2        # just Table 2
//	benchtables -figure 3       # just Figure 3
//	benchtables -quick          # small universe (seconds instead of minutes)
//	benchtables -bench-json     # machine-readable benchmarks → BENCH_<date>.json
//	benchtables -predict-diff   # predictive-vs-exhaustive scheduling comparison
//	benchtables -adversarial    # hostile-universe per-engine scorecard
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"censysmap/internal/engines"
	"censysmap/internal/eval"
)

func main() {
	table := flag.Int("table", 0, "render only this table (1-5)")
	figure := flag.Int("figure", 0, "render only this figure (2-5)")
	quick := flag.Bool("quick", false, "use the small/fast lab configuration")
	seed := flag.Uint64("seed", 1, "universe seed")
	benchJSON := flag.Bool("bench-json", false,
		"run the pipeline/search benchmarks and write BENCH_<date>.json instead of rendering tables")
	benchDir := flag.String("bench-dir", ".", "directory BENCH_<date>.json is written into")
	predictDiff := flag.Bool("predict-diff", false,
		"replay the predictive-vs-exhaustive scheduling comparison and render its tables")
	adversarial := flag.Bool("adversarial", false,
		"replay the adversarial scenario pack and render the per-engine scorecard")
	flag.Parse()

	if *adversarial {
		r, err := eval.RunAdversarial(eval.DefaultAdversarialProfile())
		if err != nil {
			fmt.Fprintln(os.Stderr, "adversarial:", err)
			os.Exit(1)
		}
		fmt.Println(r.Render())
		return
	}

	if *predictDiff {
		for _, p := range eval.DefaultPredictProfiles() {
			r, err := eval.PredictDiff(p)
			if err != nil {
				fmt.Fprintln(os.Stderr, "predict-diff:", err)
				os.Exit(1)
			}
			fmt.Println(r.Render())
		}
		return
	}

	if *benchJSON {
		path, err := runBenchJSON(*benchDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench-json:", err)
			os.Exit(1)
		}
		fmt.Println(path)
		return
	}

	cfg := eval.DefaultLabConfig()
	if *quick {
		cfg = eval.QuickLabConfig()
	}
	cfg.Seed = *seed

	fmt.Fprintf(os.Stderr, "building lab: universe %v, %d-day warmup (simulated)...\n",
		cfg.Prefix, cfg.WarmupDays)
	start := time.Now()
	lab, err := eval.NewLab(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lab:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "lab ready in %v: %d hosts, %d live services, %d in map\n\n",
		time.Since(start).Round(time.Millisecond), lab.Net.Hosts(),
		len(lab.GroundTruth()), len(lab.Censys.Records()))

	want := func(t, f int) bool {
		if *table == 0 && *figure == 0 {
			return true
		}
		return (t != 0 && t == *table) || (f != 0 && f == *figure)
	}

	if want(1, 0) {
		fmt.Println(eval.Table1(lab).Render())
	}
	if want(2, 0) {
		fmt.Println(eval.RenderTable2(eval.Table2(lab)))
	}
	if want(3, 0) {
		fmt.Println(eval.Table3(lab).Render())
	}
	if want(4, 0) {
		fmt.Println(eval.Table4(lab).Render())
	}
	if want(0, 2) {
		fmt.Println(eval.Figure2(lab).Render())
	}
	if want(0, 3) {
		fmt.Println(eval.Figure3(lab).Render())
	}
	if want(0, 4) {
		fmt.Println(eval.Figure4(lab).Render())
	}
	if want(0, 5) {
		fmt.Println(eval.Figure5(lab, lab.Engines()[1], 300).Render())
	}
	if want(5, 0) {
		// Table 5 mutates the lab (injects honeypots, advances weeks), so
		// it runs last.
		ttd := eval.DefaultTTDConfig()
		if *quick {
			ttd.Honeypots = 25
			ttd.ObserveFor = 8 * 24 * time.Hour
		}
		fmt.Println(eval.Table5(lab, ttd, []engines.Engine{lab.Censys, lab.Baselines[0]}).Render())
	}
}
