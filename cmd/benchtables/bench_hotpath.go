package main

// Hot-path A/B workloads for the BENCH_<date>.json document: each perf front
// gets a before row (the legacy strategy, kept behind a toggle) and an after
// row (the default), so the document itself proves the win — ns/op for I/O
// and evaluation, allocs/op for the codecs.

import (
	"encoding/json"
	"fmt"
	"net/netip"
	"os"
	"testing"
	"time"

	"censysmap/internal/core"
	"censysmap/internal/cqrs"
	"censysmap/internal/durable"
	"censysmap/internal/entity"
	"censysmap/internal/journal"
	"censysmap/internal/search"
)

// benchService is a representative journaled service: TLS metadata, a
// multi-line banner, and two attributes — the median write-path payload.
func benchService() *entity.Service {
	t0 := time.Date(2026, 3, 1, 8, 30, 0, 0, time.UTC)
	return &entity.Service{
		Port: 443, Transport: entity.TCP, Protocol: "HTTP",
		TLS: true, CertSHA256: "9f2a4c0e7b1d55aa31c8e6f4d2b09e7c5a1f3d6b8e0c2a4f6d8b0e2c4a6f8d0b",
		Banner:     "HTTP/1.1 200 OK\r\nServer: nginx/1.24.0",
		Attributes: map[string]string{"http.title": "Admin Console", "http.server": "nginx/1.24.0"},
		Method:     entity.DetectRefresh, Verified: true,
		FirstSeen: t0, LastSeen: t0.Add(26 * time.Hour), SourcePoP: "us-east-1",
	}
}

// journalEncodeBench measures one service-event encode per op: the legacy
// encoding/json marshal vs the hand-rolled appender into a reused buffer.
func journalEncodeBench(useJSON bool) func(b *testing.B) {
	return func(b *testing.B) {
		svc := benchService()
		var buf []byte
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if useJSON {
				var err error
				buf, err = json.Marshal(struct {
					Service *entity.Service `json:"service"`
				}{svc})
				if err != nil {
					b.Fatal(err)
				}
			} else {
				buf = cqrs.AppendServiceEvent(buf[:0], svc)
			}
		}
		_ = buf
	}
}

// journalApplyBench measures steady-state replay: the same service_changed
// delta applied to a host whose slot already holds that state — the dominant
// shape during refresh replay, where most fields are unchanged.
func journalApplyBench(fast bool) func(b *testing.B) {
	return func(b *testing.B) {
		svc := benchService()
		ev := journal.Event{
			Entity: "10.1.2.3", Kind: cqrs.KindServiceChanged,
			Time: svc.LastSeen, Payload: cqrs.EncodeServiceEvent(svc),
		}
		h := entity.NewHost(netip.MustParseAddr("10.1.2.3"))
		cqrs.SetFastApply(fast)
		defer cqrs.SetFastApply(true)
		if err := cqrs.ApplyEvent(h, ev); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := cqrs.ApplyEvent(h, ev); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// benchStore builds a parts-partition journal with entities × eventsEach
// delta rows plus one snapshot per entity.
func benchStore(parts, entities, eventsEach int) *journal.Store {
	s := journal.NewPartitioned(parts)
	base := time.Date(2026, 3, 1, 0, 0, 0, 0, time.UTC)
	payload := cqrs.EncodeServiceEvent(benchService())
	for i := 0; i < entities; i++ {
		id := fmt.Sprintf("bench-host-%04d", i)
		for e := 0; e < eventsEach; e++ {
			if _, err := s.Append(id, base.Add(time.Duration(e)*time.Minute), cqrs.KindServiceChanged, payload); err != nil {
				panic(err)
			}
		}
		if _, err := s.AppendSnapshot(id, base.Add(time.Duration(eventsEach)*time.Minute), []byte(`{"state":"up"}`)); err != nil {
			panic(err)
		}
	}
	return s
}

// segmentLoadBench measures a full durable recovery of a saved 8-partition
// store: per-file os.ReadFile vs the batched shared-buffer reader.
func segmentLoadBench(perFile bool) func(b *testing.B) {
	return func(b *testing.B) {
		dir, err := os.MkdirTemp("", "benchload")
		if err != nil {
			b.Fatal(err)
		}
		defer os.RemoveAll(dir)
		s := benchStore(8, 256, 4)
		stores := []durable.NamedStore{{Name: "journal", Store: s}}
		if err := durable.Save(dir, stores, []byte(`{}`), durable.SaveOptions{RecordsPerSegment: 32}); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := durable.Load(dir, durable.LoadOptions{PerFileReads: perFile})
			if err != nil {
				b.Fatal(err)
			}
			if !res.Report.Clean() {
				b.Fatalf("findings: %+v", res.Report.Findings)
			}
		}
	}
}

// entityInPartition finds an entity id hashing into the wanted partition of
// a parts-wide store.
func entityInPartition(parts, want int) string {
	for i := 0; ; i++ {
		id := fmt.Sprintf("dirty-host-%d", i)
		probe := journal.NewPartitioned(parts)
		if _, err := probe.Append(id, time.Unix(0, 1).UTC(), "k", nil); err != nil {
			panic(err)
		}
		for pi := 0; pi < parts; pi++ {
			if len(probe.DumpPartition(pi).Rows) > 0 {
				if pi == want {
					return id
				}
				break
			}
		}
	}
}

// checkpointBench measures one durable Save of an 8-partition store per op.
// dirty < 0 is the legacy full rewrite; otherwise each iteration dirties
// exactly dirty partitions before an incremental save, so ns/op tracks the
// dirty-partition count rather than the store size.
func checkpointBench(dirty int) func(b *testing.B) {
	return func(b *testing.B) {
		dir, err := os.MkdirTemp("", "benchckpt")
		if err != nil {
			b.Fatal(err)
		}
		defer os.RemoveAll(dir)
		const parts = 8
		s := benchStore(parts, 512, 2)
		stores := []durable.NamedStore{{Name: "journal", Store: s}}
		opts := durable.SaveOptions{RecordsPerSegment: 64, Incremental: dirty >= 0}
		if err := durable.Save(dir, stores, []byte(`{}`), opts); err != nil {
			b.Fatal(err)
		}
		var dirtyIDs []string
		for k := 0; k < dirty; k++ {
			dirtyIDs = append(dirtyIDs, entityInPartition(parts, k))
		}
		ts := time.Date(2026, 4, 1, 0, 0, 0, 0, time.UTC)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if len(dirtyIDs) > 0 {
				b.StopTimer()
				for _, id := range dirtyIDs {
					ts = ts.Add(time.Second)
					if _, err := s.Append(id, ts, cqrs.KindServiceChanged, []byte(`{"x":1}`)); err != nil {
						b.Fatal(err)
					}
				}
				b.StartTimer()
			}
			if err := durable.Save(dir, stores, []byte(`{}`), opts); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// benchSearchIndex mirrors the search package's benchmark corpus: field
// cardinalities spanning the selectivity spectrum over n documents.
func benchSearchIndex(n int) *search.Index {
	ix := search.NewPartitioned(1)
	countries := []string{"US", "CN", "DE", "FR", "JP"}
	protos := []string{"HTTP", "SSH", "FTP", "MODBUS"}
	for i := 0; i < n; i++ {
		h := entity.NewHost(netip.AddrFrom4([4]byte{10, byte(i >> 16), byte(i >> 8), byte(i)}))
		h.Location = &entity.Location{Country: countries[i%len(countries)]}
		h.AS = &entity.AS{Number: uint32(64000 + i%500), Org: fmt.Sprintf("Org %d", i%100)}
		h.SetService(&entity.Service{
			Port: uint16(1 + i%65535), Transport: entity.TCP,
			Protocol: protos[i%len(protos)], Verified: true,
			Banner:     fmt.Sprintf("banner item %d", i),
			Attributes: map[string]string{"http.title": fmt.Sprintf("Console %d", i%50)},
		})
		ix.Upsert(h)
	}
	ix.SetQueryCache(false)
	return ix
}

// searchEvalBench measures raw plan evaluation (cache off) under the fused
// or the legacy AND evaluator.
func searchEvalBench(ix *search.Index, query string, fused bool) func(b *testing.B) {
	return func(b *testing.B) {
		search.SetFusedAnd(fused)
		defer search.SetFusedAnd(true)
		q, err := search.ParseQuery(query)
		if err != nil {
			b.Fatal(err)
		}
		n := 0
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			n = len(ix.Execute(q))
		}
		b.StopTimer()
		b.ReportMetric(float64(n), "hits")
	}
}

// recordHotPath emits the four fronts' before/after rows.
func recordHotPath(record func(string, func(b *testing.B))) {
	record("journal/delta_encode_json", journalEncodeBench(true))
	record("journal/delta_encode", journalEncodeBench(false))
	record("journal/delta_apply_json", journalApplyBench(false))
	record("journal/delta_apply", journalApplyBench(true))

	record("durable/segment_load_perfile", segmentLoadBench(true))
	record("durable/segment_load_batched", segmentLoadBench(false))

	record("checkpoint/full_8parts", checkpointBench(-1))
	record("checkpoint/incremental_dirty1of8", checkpointBench(1))
	record("checkpoint/incremental_dirty4of8", checkpointBench(4))
	record("checkpoint/incremental_dirty8of8", checkpointBench(8))

	ix := benchSearchIndex(50000)
	const and3 = `as.number: 64120 and services.protocol: HTTP and location.country: US`
	const andNot = `location.country: US and not services.protocol: HTTP and not services.protocol: SSH`
	record("search/and3_legacy", searchEvalBench(ix, and3, false))
	record("search/and3_fused", searchEvalBench(ix, and3, true))
	record("search/and_not_legacy", searchEvalBench(ix, andNot, false))
	record("search/and_not_fused", searchEvalBench(ix, andNot, true))
}

// soakBench is the multi-simulated-day soak: each iteration runs seven
// simulated days on the warmed 8-shard pipeline with an incremental
// SaveDurable checkpoint after every day — the production cadence of
// continuous scanning punctuated by durable ticks.
func soakBench() func(b *testing.B) {
	return func(b *testing.B) {
		net := benchUniverse()
		cfg := core.DefaultConfig()
		cfg.CloudBlocks = 1
		cfg.Shards = 8
		cfg.InterroWorkers = 4
		cfg.RefreshEvery = time.Hour
		m, err := core.New(cfg, net)
		if err != nil {
			b.Fatal(err)
		}
		m.Run(24 * time.Hour)
		dir, err := os.MkdirTemp("", "benchsoak")
		if err != nil {
			b.Fatal(err)
		}
		defer os.RemoveAll(dir)
		opts := durable.SaveOptions{RecordsPerSegment: 64, Incremental: true}
		if err := m.SaveDurable(dir, opts); err != nil {
			b.Fatal(err)
		}
		before := m.Stats().Interrogations
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for day := 0; day < 7; day++ {
				m.Run(24 * time.Hour)
				if err := m.SaveDurable(dir, opts); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(m.Stats().Interrogations-before)/float64(b.N*7), "interro/simday")
	}
}
