package main

// The -bench-json mode: run the pipeline and search benchmarks in-process
// via testing.Benchmark and write the results as one machine-readable JSON
// document, BENCH_<date>.json, so the perf trajectory is tracked across PRs
// (diff two files, or plot ns_per_op over time). The workloads mirror the
// repo's `go test -bench` suites: steady-state pipeline throughput (serial
// vs sharded, telemetry off vs on) and the read-path search engine.

import (
	"encoding/json"
	"fmt"
	"net/netip"
	"os"
	"runtime"
	"testing"
	"time"

	"censysmap/internal/cluster"
	"censysmap/internal/core"
	"censysmap/internal/eval"
	"censysmap/internal/simclock"
	"censysmap/internal/simnet"
	"censysmap/internal/telemetry"
)

// benchResult is one benchmark in the JSON document.
type benchResult struct {
	// Name identifies the workload, e.g. "pipeline/shards8_workers4".
	Name string `json:"name"`
	// Iterations is testing.B's chosen N.
	Iterations int `json:"iterations"`
	// NsPerOp is wall time per iteration.
	NsPerOp float64 `json:"ns_per_op"`
	// AllocsPerOp/BytesPerOp are heap allocations per iteration. Pointers so
	// rows from documents that predate the fields round-trip without gaining
	// fabricated zeros (0 allocs is a meaningful measurement, not absence).
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	// Metrics are the benchmark's ReportMetric extras (interro/simday, ...).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// benchDoc is the BENCH_<date>.json schema.
type benchDoc struct {
	Date       string        `json:"date"`
	GoVersion  string        `json:"go_version"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	Results    []benchResult `json:"results"`
}

// benchUniverse builds the dense /22 universe the throughput benches scan.
func benchUniverse() *simnet.Internet {
	simCfg := simnet.DefaultConfig()
	simCfg.Prefix = netip.MustParsePrefix("10.0.0.0/22")
	simCfg.Seed = 1
	simCfg.CloudBlocks = 1
	simCfg.WebProperties = 20
	simCfg.HostDensity = 0.5
	return simnet.New(simCfg, simclock.New())
}

// pipelineBench measures steady-state interrogation throughput for one
// pipeline layout (24 simulated hours per iteration, warm-up untimed).
func pipelineBench(shards, workers int, instrumented bool) func(b *testing.B) {
	return func(b *testing.B) {
		net := benchUniverse()
		cfg := core.DefaultConfig()
		cfg.CloudBlocks = 1
		cfg.Shards = shards
		cfg.InterroWorkers = workers
		cfg.RefreshEvery = time.Hour
		if instrumented {
			cfg.Telemetry = telemetry.New()
		}
		m, err := core.New(cfg, net)
		if err != nil {
			b.Fatal(err)
		}
		m.Run(24 * time.Hour)
		before := m.Stats().Interrogations
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.Run(24 * time.Hour)
		}
		b.StopTimer()
		b.ReportMetric(float64(m.Stats().Interrogations-before)/float64(b.N), "interro/simday")
	}
}

// clusterPipelineBench measures the same steady-state workload as
// pipelineBench(8, 4) but driven through an N-node replication cluster, so
// the delta against pipeline/shards8_workers4 is the pure cost of log
// extraction, segment sealing, and shipping (the 1-node row is the
// replication machinery's floor: no followers, but the plog still runs).
func clusterPipelineBench(nodes int) func(b *testing.B) {
	return func(b *testing.B) {
		net := benchUniverse()
		cfg := core.DefaultConfig()
		cfg.CloudBlocks = 1
		cfg.Shards = 8
		cfg.InterroWorkers = 4
		cfg.RefreshEvery = time.Hour
		m, err := core.New(cfg, net)
		if err != nil {
			b.Fatal(err)
		}
		cl, err := cluster.New(m, cluster.Config{Nodes: nodes})
		if err != nil {
			b.Fatal(err)
		}
		step := func() {
			if err := cl.Step(func() { m.Run(24 * time.Hour) }); err != nil {
				b.Fatal(err)
			}
		}
		step()
		before := m.Stats().Interrogations
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			step()
		}
		b.StopTimer()
		b.ReportMetric(float64(m.Stats().Interrogations-before)/float64(b.N), "interro/simday")
		st := cl.Stats()
		b.ReportMetric(float64(st.RecordsShipped)/float64(b.N+1), "shipped/simday")
	}
}

// searchBenchQueries are the read-path workloads: a selective field query, a
// broad one, a numeric range, and a negation (the planner's worst case).
var searchBenchQueries = []struct{ name, q string }{
	{"field_selective", `services.protocol: MODBUS`},
	{"field_broad", `services.protocol: HTTP`},
	{"range", `services.port: [1 TO 1024]`},
	{"boolean_not", `services.protocol: HTTP and not services.tls: true`},
}

// searchBench measures query latency over a warmed 2-simulated-day map. Each
// iteration runs the query fresh through the cached planner+executor, so the
// number reflects the steady-state (cache-warm) read path.
func searchBench(m *core.Map, query string) func(b *testing.B) {
	return func(b *testing.B) {
		n := 0
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var err error
			n, err = m.Count(query)
			if err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(n), "hits")
	}
}

// predictBench replays one predict-diff profile under one scheduler. The
// replay is deterministic, so the metrics are identical across iterations;
// only the wall time is averaged.
func predictBench(p eval.PredictProfile, predictive bool) func(b *testing.B) {
	return func(b *testing.B) {
		var res eval.PredictRunResult
		for i := 0; i < b.N; i++ {
			var err error
			res, err = eval.RunPredictScheduler(p, predictive)
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(res.PerTenKProbes(), "svc/10kprobes")
		b.ReportMetric(float64(res.Services), "services")
		b.ReportMetric(float64(res.ProbesSpent), "probes")
	}
}

// adversarialBench replays the hostile-universe profile end to end. The
// replay is deterministic, so the metrics are identical across iterations;
// only the wall time is averaged.
func adversarialBench(p eval.AdversarialProfile) func(b *testing.B) {
	return func(b *testing.B) {
		var res eval.AdversarialResult
		for i := 0; i < b.N; i++ {
			var err error
			res, err = eval.RunAdversarial(p)
			if err != nil {
				b.Fatal(err)
			}
		}
		var censys eval.AdversarialEngineRow
		for _, row := range res.Rows {
			if row.Engine == "censysmap" {
				censys = row
			}
		}
		b.ReportMetric(100*censys.Coverage(), "coverage_pct")
		b.ReportMetric(float64(censys.HoneypotRecords), "honeypot_records")
		b.ReportMetric(float64(res.Pipeline.HoneypotsFlagged), "honeypots_flagged")
		b.ReportMetric(float64(res.Pipeline.Deadline.TotalExhausted), "budget_exhausted")
		b.ReportMetric(float64(censys.DetectorBlocks), "detector_blocks")
	}
}

// runBenchJSON runs every workload and merges the rows into BENCH_<date>.json
// in dir: regenerated rows replace same-named existing ones, and rows this
// tool does not produce (loadgen's serve/* sweep) are preserved. It returns
// the path written.
func runBenchJSON(dir string) (string, error) {
	doc := benchDoc{
		Date:       time.Now().UTC().Format("2006-01-02"),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	record := func(name string, fn func(b *testing.B)) {
		fmt.Fprintf(os.Stderr, "bench %-40s ", name)
		r := testing.Benchmark(fn)
		allocs := float64(r.AllocsPerOp())
		bytes := float64(r.AllocedBytesPerOp())
		fmt.Fprintf(os.Stderr, "%12.0f ns/op %10.0f allocs/op  n=%d\n",
			float64(r.NsPerOp()), allocs, r.N)
		doc.Results = append(doc.Results, benchResult{
			Name:        name,
			Iterations:  r.N,
			NsPerOp:     float64(r.NsPerOp()),
			AllocsPerOp: &allocs,
			BytesPerOp:  &bytes,
			Metrics:     r.Extra,
		})
	}

	record("pipeline/serial", pipelineBench(1, 1, false))
	record("pipeline/shards8_workers4", pipelineBench(8, 4, false))
	record("pipeline/shards8_workers4_telemetry", pipelineBench(8, 4, true))
	record("pipeline/shards8_workers4_cluster1", clusterPipelineBench(1))
	record("pipeline/shards8_workers4_cluster3", clusterPipelineBench(3))

	// One shared warmed map for the search benches.
	net := benchUniverse()
	cfg := core.DefaultConfig()
	cfg.CloudBlocks = 1
	cfg.Shards = 8
	cfg.InterroWorkers = 4
	m, err := core.New(cfg, net)
	if err != nil {
		return "", err
	}
	m.Run(48 * time.Hour)
	for _, q := range searchBenchQueries {
		record("search/"+q.name, searchBench(m, q.q))
	}

	recordHotPath(record)
	record("pipeline/soak7day_incremental_save", soakBench())

	// Probe-efficiency rows: each replays one eval profile end to end, so
	// ns_per_op is the replay wall time and the metrics carry the scheduling
	// outcome (services per 10k probe targets is what bench-delta gates).
	for _, p := range eval.DefaultPredictProfiles() {
		record("predict/"+p.Name+"_exhaustive", predictBench(p, false))
		record("predict/"+p.Name+"_predictive", predictBench(p, true))
	}

	// Adversarial row: the full hostile-universe replay (honeypot farms,
	// tarpits, detectors, banner churn) with every countermeasure on. The
	// metrics carry the survival outcome — coverage under attack, honeypots
	// kept out of the dataset, budget exhaustions absorbed, blocks drawn.
	advp := eval.DefaultAdversarialProfile()
	record("adversarial/"+advp.Name, adversarialBench(advp))

	// Merge: regenerated rows win by name; everything else in an existing
	// same-day document (the loadgen serve/* sweep) is carried over.
	path := fmt.Sprintf("%s/BENCH_%s.json", dir, doc.Date)
	if blob, err := os.ReadFile(path); err == nil {
		var old benchDoc
		if err := json.Unmarshal(blob, &old); err != nil {
			return "", fmt.Errorf("existing %s: %w", path, err)
		}
		fresh := make(map[string]bool, len(doc.Results))
		for _, r := range doc.Results {
			fresh[r.Name] = true
		}
		for _, r := range old.Results {
			if !fresh[r.Name] {
				doc.Results = append(doc.Results, r)
			}
		}
	}

	blob, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return "", err
	}
	if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
		return "", err
	}
	return path, nil
}
