// Command loadgen drives the serving tier with a deterministic open-loop
// synthetic workload and reports latency percentiles and the maximum
// sustainable request rate:
//
//	loadgen -universe 10.0.0.0/22 -days 2 -qps 200,400,800 -requests 1000
//	loadgen -cluster-nodes 3 ...          # same workload through a cluster
//	loadgen -bench-dir .                  # merge rows into BENCH_<date>.json
//
// The workload is deterministic for a fixed -workload-seed: a Zipf-skewed
// query mix over the live dataset (point lookups and history reads over
// hot IPs, interactive searches, bulk-export pages) with exponential
// inter-arrival gaps generated up front. Arrivals are open-loop — the
// dispatcher fires each request at its scheduled instant whether or not
// earlier ones have completed, so the offered rate never adapts to server
// slowdown and overload is visible as shed/latency rather than hidden by
// client back-pressure. Latency is measured from the scheduled arrival, not
// the dispatch, so queueing delay is charged to the server (no coordinated
// omission).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"net/netip"
	"net/url"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"censysmap"
	"censysmap/internal/cluster"
	"censysmap/internal/serve"
)

// benchKey is the API key of the load generator's tenant (internal tier:
// no rate limit, so every rejection the sweep observes is admission-control
// shedding, not the generator tripping its own bucket).
const benchKey = "loadgen-bench-key"

// searchQueries is the interactive-search pool; the Zipf draw makes the
// head queries dominate, exercising the result cache the way repeated
// dashboard traffic does.
var searchQueries = []string{
	`services.protocol: HTTP`,
	`services.tls: true`,
	`services.port: [1 TO 1024]`,
	`services.protocol: SSH`,
	`services.protocol: HTTP and services.tls: true`,
	`services.protocol: MODBUS`,
}

// genReq is one scheduled request.
type genReq struct {
	at    time.Duration // offset from level start
	url   string
	class string // lookup | search | export
}

// mixWeights parses "-mix lookup=70,search=20,export=10".
func mixWeights(raw string) (map[string]int, error) {
	out := map[string]int{}
	for _, entry := range strings.Split(raw, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(entry), "=")
		if !ok {
			return nil, fmt.Errorf("bad -mix entry %q", entry)
		}
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("bad -mix weight %q", entry)
		}
		out[k] = n
	}
	for k := range out {
		if k != "lookup" && k != "search" && k != "export" {
			return nil, fmt.Errorf("unknown -mix class %q", k)
		}
	}
	if out["lookup"]+out["search"]+out["export"] == 0 {
		return nil, fmt.Errorf("-mix weights sum to zero")
	}
	return out, nil
}

// buildSchedule pre-generates one level's request list: Zipf query/target
// draws and exponential inter-arrival gaps, all from one seeded source.
func buildSchedule(rng *rand.Rand, addrs []string, mix map[string]int, n int, qps float64) []genReq {
	addrZipf := rand.NewZipf(rng, 1.2, 1, uint64(len(addrs)-1))
	queryZipf := rand.NewZipf(rng, 1.4, 1, uint64(len(searchQueries)-1))
	total := mix["lookup"] + mix["search"] + mix["export"]
	reqs := make([]genReq, 0, n)
	var at time.Duration
	for i := 0; i < n; i++ {
		at += time.Duration(rng.ExpFloat64() / qps * float64(time.Second))
		draw := rng.Intn(total)
		var rq genReq
		switch {
		case draw < mix["lookup"]:
			addr := addrs[addrZipf.Uint64()]
			rq = genReq{url: "/v2/hosts/" + addr, class: "lookup"}
			if rng.Intn(10) == 0 {
				rq.url += "/history"
			}
		case draw < mix["lookup"]+mix["search"]:
			q := searchQueries[queryZipf.Uint64()]
			rq = genReq{url: "/v2/hosts/search?limit=25&q=" + urlQueryEscape(q), class: "search"}
		default:
			q := searchQueries[queryZipf.Uint64()]
			rq = genReq{url: "/v2/export/hosts?per_page=100&q=" + urlQueryEscape(q), class: "export"}
		}
		rq.at = at
		reqs = append(reqs, rq)
	}
	return reqs
}

func urlQueryEscape(q string) string { return url.QueryEscape(q) }

// levelResult is one offered-rate step of the sweep.
type levelResult struct {
	offered     float64
	achieved    float64
	served      int
	shed        int
	rateLimited int
	errors      int
	p50, p99    time.Duration
	mean        time.Duration
}

// runLevel fires one schedule open-loop against the handler.
func runLevel(h http.Handler, reqs []genReq) levelResult {
	var (
		wg  sync.WaitGroup
		mu  sync.Mutex
		lat []time.Duration
		res levelResult
	)
	start := time.Now()
	for i := range reqs {
		rq := &reqs[i]
		target := start.Add(rq.at)
		if d := time.Until(target); d > 0 {
			time.Sleep(d)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			rec := httptest.NewRecorder()
			req := httptest.NewRequest(http.MethodGet, rq.url, nil)
			req.Header.Set("Authorization", "Bearer "+benchKey)
			h.ServeHTTP(rec, req)
			l := time.Since(target)
			mu.Lock()
			defer mu.Unlock()
			switch {
			case rec.Code < 400:
				res.served++
				lat = append(lat, l)
			case rec.Code == http.StatusServiceUnavailable:
				res.shed++
			case rec.Code == http.StatusTooManyRequests:
				res.rateLimited++
			default:
				res.errors++
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	res.achieved = float64(len(reqs)) / elapsed.Seconds()
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	if len(lat) > 0 {
		res.p50 = lat[len(lat)*50/100]
		res.p99 = lat[len(lat)*99/100]
		var sum time.Duration
		for _, l := range lat {
			sum += l
		}
		res.mean = sum / time.Duration(len(lat))
	}
	return res
}

// sustainable reports whether a level held its offered rate: under 1%
// rejected and the dispatcher kept up within 10%.
func (r levelResult) sustainable() bool {
	total := r.served + r.shed + r.rateLimited + r.errors
	if total == 0 {
		return false
	}
	rejected := float64(r.shed+r.rateLimited+r.errors) / float64(total)
	return rejected <= 0.01 && r.achieved >= 0.9*r.offered
}

func main() {
	universe := flag.String("universe", "10.0.0.0/22", "IPv4 universe prefix")
	days := flag.Int("days", 2, "simulated warmup days before the sweep")
	seed := flag.Uint64("seed", 1, "universe seed")
	workloadSeed := flag.Int64("workload-seed", 7, "workload generator seed")
	qpsList := flag.String("qps", "1000,2000,4000,8000", "offered request rates to sweep, comma-separated")
	requests := flag.Int("requests", 2000, "requests per sweep level")
	mixFlag := flag.String("mix", "lookup=70,search=20,export=10", "request class weights")
	clusterNodes := flag.Int("cluster-nodes", 0, "drive an N-node cluster (0 = serial)")
	capacity := flag.Int("capacity", 64, "serving-tier admission capacity")
	benchDir := flag.String("bench-dir", "", "merge serve/ rows into BENCH_<date>.json in this directory")
	flag.Parse()

	prefix, err := netip.ParsePrefix(*universe)
	if err != nil {
		fatal("bad -universe:", err)
	}
	mix, err := mixWeights(*mixFlag)
	if err != nil {
		fatal(err)
	}
	var levels []float64
	for _, s := range strings.Split(*qpsList, ",") {
		q, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil || q <= 0 {
			fatal("bad -qps entry:", s)
		}
		levels = append(levels, q)
	}

	sys, err := censysmap.NewSystem(censysmap.Options{Universe: prefix, Seed: *seed})
	if err != nil {
		fatal(err)
	}
	label := "serial"
	advance := func(d time.Duration) { sys.Run(d) }
	if *clusterNodes > 0 {
		cl, err := cluster.New(sys.Map(), cluster.Config{Nodes: *clusterNodes, Telemetry: sys.Metrics()})
		if err != nil {
			fatal(err)
		}
		label = fmt.Sprintf("cluster%d", *clusterNodes)
		advance = func(d time.Duration) {
			if err := cl.Step(func() { sys.Run(d) }); err != nil {
				fatal("replication:", err)
			}
		}
	}
	fmt.Printf("universe %v (%s): warming up %d simulated days...\n", prefix, label, *days)
	warmStart := time.Now()
	advance(time.Duration(*days) * 24 * time.Hour)
	fmt.Printf("warmup done in %v: %d services mapped\n",
		time.Since(warmStart).Round(time.Millisecond), len(sys.Services()))

	front, err := sys.Frontend(serve.Config{
		Tenants:  []serve.Tenant{{Name: "loadgen", Key: benchKey, Tier: "internal"}},
		Capacity: *capacity,
	})
	if err != nil {
		fatal(err)
	}

	// Target pool: every mapped address, sorted (Services() is sorted), so
	// Zipf rank i names the same host on every run.
	seen := map[string]bool{}
	var addrs []string
	for _, rec := range sys.Services() {
		if a := rec.Addr.String(); !seen[a] {
			seen[a] = true
			addrs = append(addrs, a)
		}
	}
	if len(addrs) < 2 {
		fatal("universe too small: fewer than 2 mapped hosts")
	}

	rng := rand.New(rand.NewSource(*workloadSeed))
	fmt.Printf("\n%-10s %10s %8s %6s %8s %8s %9s %9s\n",
		"offered", "achieved", "served", "shed", "limited", "errors", "p50", "p99")
	results := make([]levelResult, 0, len(levels))
	maxSustainable := 0.0
	for _, qps := range levels {
		reqs := buildSchedule(rng, addrs, mix, *requests, qps)
		r := runLevel(front, reqs)
		r.offered = qps
		results = append(results, r)
		if r.sustainable() && qps > maxSustainable {
			maxSustainable = qps
		}
		fmt.Printf("%-10.0f %10.0f %8d %6d %8d %8d %9s %9s\n",
			r.offered, r.achieved, r.served, r.shed, r.rateLimited, r.errors,
			r.p50.Round(time.Microsecond), r.p99.Round(time.Microsecond))
	}
	fmt.Printf("\nmax sustainable QPS (%s): %.0f\n", label, maxSustainable)

	if *benchDir != "" {
		path, err := mergeBench(*benchDir, label, results, maxSustainable)
		if err != nil {
			fatal("bench merge:", err)
		}
		fmt.Println(path)
	}
}

// benchResult / benchDoc mirror cmd/benchtables' BENCH_<date>.json schema so
// loadgen rows merge into the same document.
type benchResult struct {
	Name       string  `json:"name"`
	Iterations int     `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// AllocsPerOp/BytesPerOp are written by benchtables; mirrored here so
	// merging serve/* rows into an existing document round-trips them.
	AllocsPerOp *float64           `json:"allocs_per_op,omitempty"`
	BytesPerOp  *float64           `json:"bytes_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

type benchDoc struct {
	Date       string        `json:"date"`
	GoVersion  string        `json:"go_version"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	Results    []benchResult `json:"results"`
}

// mergeBench folds the sweep into BENCH_<date>.json: existing serve/<label>
// rows are replaced, everything else is preserved.
func mergeBench(dir, label string, results []levelResult, maxQPS float64) (string, error) {
	date := time.Now().UTC().Format("2006-01-02")
	path := fmt.Sprintf("%s/BENCH_%s.json", dir, date)
	doc := benchDoc{Date: date, GoVersion: runtime.Version(), GOMAXPROCS: runtime.GOMAXPROCS(0)}
	if blob, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(blob, &doc); err != nil {
			return "", fmt.Errorf("existing %s: %w", path, err)
		}
	}
	prefix := "serve/" + label
	kept := doc.Results[:0]
	for _, r := range doc.Results {
		if !strings.HasPrefix(r.Name, prefix) {
			kept = append(kept, r)
		}
	}
	doc.Results = kept
	for _, r := range results {
		doc.Results = append(doc.Results, benchResult{
			Name:       fmt.Sprintf("%s/qps%.0f", prefix, r.offered),
			Iterations: r.served,
			NsPerOp:    float64(r.mean.Nanoseconds()),
			Metrics: map[string]float64{
				"p50_ms":       float64(r.p50.Microseconds()) / 1000,
				"p99_ms":       float64(r.p99.Microseconds()) / 1000,
				"offered_qps":  r.offered,
				"achieved_qps": r.achieved,
				"served":       float64(r.served),
				"shed":         float64(r.shed),
				"errors":       float64(r.rateLimited + r.errors),
			},
		})
	}
	doc.Results = append(doc.Results, benchResult{
		Name:    prefix + "/max_sustainable_qps",
		Metrics: map[string]float64{"qps": maxQPS},
	})
	blob, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return "", err
	}
	return path, os.WriteFile(path, append(blob, '\n'), 0o644)
}

func fatal(args ...any) {
	fmt.Fprintln(os.Stderr, args...)
	os.Exit(1)
}
