module censysmap

go 1.24
