// Package censysmap is a from-scratch reproduction of "Censys: A Map of
// Internet Hosts and Services" (Durumeric et al., SIGCOMM 2025): a complete
// Internet-mapping pipeline — two-phase scanning, predictive discovery,
// CQRS event-sourced storage, enrichment, and query surfaces — running
// against a deterministic synthetic Internet.
//
// The public API is a thin facade over the pipeline:
//
//	sys, _ := censysmap.NewSystem(censysmap.Options{})
//	sys.Run(48 * time.Hour)                         // simulated time
//	hosts, _ := sys.Search(`services.service_name="MODBUS" and location.country="US"`)
//	host, _ := sys.Host(netip.MustParseAddr("10.0.1.7"))
//
// See DESIGN.md for the architecture and EXPERIMENTS.md for the paper
// reproduction results.
package censysmap

import (
	"fmt"
	"net/http"
	"net/netip"
	"time"

	"censysmap/internal/core"
	"censysmap/internal/discovery"
	"censysmap/internal/entity"
	"censysmap/internal/interro"
	"censysmap/internal/journal"
	"censysmap/internal/serve"
	"censysmap/internal/simclock"
	"censysmap/internal/simnet"
	"censysmap/internal/telemetry"
)

// Re-exported entity types: these are the records queries return.
type (
	// Host is an IP-addressed host record.
	Host = entity.Host
	// Service is one service on a host.
	Service = entity.Service
	// ServiceKey addresses a service slot ("80/tcp").
	ServiceKey = entity.ServiceKey
	// WebProperty is a name-addressed HTTP(S) entity.
	WebProperty = entity.WebProperty
	// Software is a derived CPE-style software/hardware label.
	Software = entity.Software
)

// Options configures a System. The zero value gives a /18 universe with the
// paper's production parameters.
type Options struct {
	// Universe is the IPv4 prefix standing in for the Internet.
	Universe netip.Prefix
	// Seed drives all synthetic generation (default 1).
	Seed uint64
	// HostDensity is the live-host fraction (default 0.10).
	HostDensity float64
	// Pipeline overrides the scanning/storage configuration; zero fields
	// take the paper's defaults (daily refresh, 72h eviction, 3 PoPs...).
	Pipeline core.Config
	// Network overrides the synthetic Internet's full configuration; when
	// set, Universe/Seed/HostDensity are ignored.
	Network *simnet.Config
	// Scenario turns on the adversarial scenario pack: a preset name from
	// simnet.Scenarios() ("honeyfarm", "tarpit", "detector", "churn",
	// "full") or a scenario string accepted by simnet.ParseScenario
	// ("honeypot_farms=2,tarpit_rate=0.1"). The hostile overlay applies on
	// top of Network/Universe generation, and the pipeline's countermeasures
	// (interrogation deadline budgets, adaptive scan backoff, honeypot
	// uniformity detection) default on unless Pipeline sets them explicitly.
	Scenario string
	// DisablePrediction turns the GPS-style predictive scheduler off:
	// no seed scan, no cross-port model, no predicted targets. Applied
	// after Pipeline defaulting, so it works with a zero Pipeline too.
	DisablePrediction bool
	// PredictBudgetPerTick caps predictive probes per scheduling tick
	// (0 keeps the pipeline default). Ignored when DisablePrediction is
	// set. Applied after Pipeline defaulting.
	PredictBudgetPerTick int
	// DisableTelemetry leaves the pipeline uninstrumented. By default a
	// System carries a telemetry registry and serves GET /v2/metrics.
	DisableTelemetry bool
}

// System is a running Internet map: a synthetic Internet plus the complete
// pipeline scanning it on a simulated clock.
type System struct {
	net   *simnet.Internet
	clock *simclock.Sim
	m     *core.Map
}

// NewSystem builds a System. The pipeline is started; call Run (or Advance
// the Clock) to make simulated time pass.
func NewSystem(opts Options) (*System, error) {
	ncfg := simnet.DefaultConfig()
	if opts.Network != nil {
		ncfg = *opts.Network
	} else {
		if opts.Universe.IsValid() {
			ncfg.Prefix = opts.Universe
		} else {
			ncfg.Prefix = netip.MustParsePrefix("10.0.0.0/18")
		}
		if opts.Seed != 0 {
			ncfg.Seed = opts.Seed
		}
		if opts.HostDensity > 0 {
			ncfg.HostDensity = opts.HostDensity
		}
	}
	if opts.Scenario != "" {
		adv, ok := simnet.Scenarios()[opts.Scenario]
		if !ok {
			var err error
			if adv, err = simnet.ParseScenario(opts.Scenario); err != nil {
				return nil, fmt.Errorf("censysmap: %w", err)
			}
		}
		ncfg.Adversary = adv
	}
	clk := simclock.New()
	net := simnet.New(ncfg, clk)

	pcfg := opts.Pipeline
	if pcfg.ScannerID == "" {
		telOverride, sampleOverride := pcfg.Telemetry, pcfg.TraceSample
		pcfg = core.DefaultConfig()
		pcfg.CloudBlocks = ncfg.CloudBlocks
		pcfg.Telemetry = telOverride
		pcfg.TraceSample = sampleOverride
	}
	if pcfg.Telemetry == nil && !opts.DisableTelemetry {
		pcfg.Telemetry = telemetry.New()
	}
	if opts.DisablePrediction {
		pcfg.DisablePrediction = true
	}
	if ncfg.Adversary.Enabled() {
		// A hostile substrate without countermeasures wedges the worker pool
		// on the first tarpit: default the defenses unless the caller chose
		// their own (see DESIGN.md, "Adversarial scenarios").
		if !pcfg.InterroBudget.Enabled() {
			pcfg.InterroBudget = interro.Budget{
				ReadTimeout: 2 * time.Second,
				Handshake:   8 * time.Second,
				Total:       30 * time.Second,
			}
		}
		if !pcfg.ScanBackoff.Enabled() {
			pcfg.ScanBackoff = discovery.BackoffPolicy{
				StreakThreshold: 24, BaseTicks: 4, RotateAfter: 6,
			}
		}
		if pcfg.HoneypotUniformityThreshold == 0 {
			pcfg.HoneypotUniformityThreshold = 8
		}
	}
	if opts.PredictBudgetPerTick > 0 {
		pcfg.PredictBudgetPerTick = opts.PredictBudgetPerTick
	}
	m, err := core.New(pcfg, net)
	if err != nil {
		return nil, fmt.Errorf("censysmap: %w", err)
	}
	m.Start()
	return &System{net: net, clock: clk, m: m}, nil
}

// Run advances simulated time by d while the pipeline scans continuously.
func (s *System) Run(d time.Duration) { s.clock.Advance(d) }

// Now returns the current simulated time.
func (s *System) Now() time.Time { return s.clock.Now() }

// Clock exposes the simulated clock for custom scheduling.
func (s *System) Clock() *simclock.Sim { return s.clock }

// Internet exposes the synthetic Internet (ground truth, fault injection).
func (s *System) Internet() *simnet.Internet { return s.net }

// Map exposes the underlying pipeline for advanced use.
func (s *System) Map() *core.Map { return s.m }

// Search runs a Lucene-like query over the current state of all hosts:
//
//	services.port: [8000 TO 9000] and not services.tls: true
//	labels: ics and location.country: US
//	"MOVEit Transfer"
func (s *System) Search(query string) ([]*Host, error) { return s.m.Search(query) }

// Count returns the number of hosts matching a query.
func (s *System) Count(query string) (int, error) { return s.m.Count(query) }

// Host returns the current, enriched record for an address.
func (s *System) Host(addr netip.Addr) (*Host, bool) { return s.m.HostCurrent(addr) }

// HostAt reconstructs a host as it looked at a past instant (snapshot +
// journal replay).
func (s *System) HostAt(addr netip.Addr, at time.Time) (*Host, bool) { return s.m.Host(addr, at) }

// History returns the journaled change events for an address.
func (s *System) History(addr netip.Addr) []journal.Event { return s.m.History(addr) }

// CertHosts returns "ip port/transport" locators currently presenting the
// certificate with the given SHA-256 fingerprint — the threat-hunting pivot.
func (s *System) CertHosts(fingerprint string) []string { return s.m.CertHosts(fingerprint) }

// WebProperties returns all current name-addressed web properties.
func (s *System) WebProperties() []*WebProperty { return s.m.WebProperties().All() }

// APIHandler returns the REST lookup API (GET /v2/hosts/{ip},
// /v2/hosts/{ip}/history, /v2/certificates/{fp}/hosts).
func (s *System) APIHandler() http.Handler { return s.m.Lookup() }

// Frontend wraps the lookup API in the serving tier: per-tenant API keys
// with rate limits and quotas, priority-aware load shedding, snapshot-pinned
// bulk export, and conditional GETs. Mount it at /v2/ in place of
// APIHandler for authenticated heavy-traffic deployments.
func (s *System) Frontend(cfg serve.Config) (*serve.Server, error) { return s.m.Frontend(cfg) }

// Services exports the current dataset as flat records.
func (s *System) Services() []core.ServiceRecord { return s.m.CurrentServices(false) }

// Metrics returns the system's telemetry registry (nil when telemetry is
// disabled).
func (s *System) Metrics() *telemetry.Registry { return s.m.Metrics() }

// MetricsSnapshot collects the current values of every registered metric
// family, stamped with the simulated clock. The same snapshot backs both
// expositions of GET /v2/metrics.
func (s *System) MetricsSnapshot() telemetry.Snapshot { return s.m.MetricsSnapshot() }

// Traces returns the sampled per-address pipeline trace spans.
func (s *System) Traces() []telemetry.Span { return s.m.Traces() }
