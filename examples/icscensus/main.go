// ICS census (paper §6.3 and §7.2 "Critical Infrastructure Monitoring"):
// enumerate Internet-exposed industrial control systems, show why
// handshake-verified labeling matters, and reproduce the EPA-style workflow
// of finding exposed water-utility HMIs.
//
//	go run ./examples/icscensus
package main

import (
	"fmt"
	"net/netip"
	"time"

	"censysmap"
	"censysmap/internal/protocols"
	"censysmap/internal/simnet"
)

func main() {
	sys, err := censysmap.NewSystem(censysmap.Options{
		Universe: netip.MustParsePrefix("10.0.0.0/20"),
		Seed:     2025,
	})
	if err != nil {
		panic(err)
	}

	// Plant the §6.3 trap: HTTP services on the CODESYS port whose pages
	// contain the keywords naive engines match on. A handshake-verified
	// map must not count them.
	for i := 0; i < 5; i++ {
		sys.Internet().AddHost(&simnet.Host{
			Addr: netip.MustParseAddr(fmt.Sprintf("10.0.9.%d", 10+i)), Country: "US",
			Slots: []*simnet.Slot{{
				Port: 2455, Transport: "tcp",
				Spec: protocols.Spec{Protocol: "HTTP",
					Title: "operating system management console"},
				Birth: sys.Now(),
			}},
		})
	}
	// And a few exposed water-utility HMIs (HTTP panels titled like SCADA
	// water systems).
	for i := 0; i < 3; i++ {
		sys.Internet().AddHost(&simnet.Host{
			Addr: netip.MustParseAddr(fmt.Sprintf("10.0.9.%d", 100+i)), Country: "US",
			Slots: []*simnet.Slot{{
				Port: 8080, Transport: "tcp",
				Spec: protocols.Spec{Protocol: "HTTP",
					Title: "Water Treatment HMI — Pump Station"},
				Birth: sys.Now(),
			}},
		})
	}

	fmt.Println("mapping the universe (3 simulated days)...")
	sys.Run(3 * 24 * time.Hour)

	// Census: verified ICS services by protocol.
	fmt.Println("\n== Verified ICS exposure by protocol ==")
	icsProtos := []string{"MODBUS", "S7", "BACNET", "DNP3", "FOX", "EIP",
		"ATG", "CODESYS", "FINS", "IEC104"}
	total := 0
	for _, proto := range icsProtos {
		n, err := sys.Count(fmt.Sprintf(`services.service_name=%q`, proto))
		if err != nil {
			panic(err)
		}
		if n > 0 {
			fmt.Printf("  %-8s %d hosts\n", proto, n)
			total += n
		}
	}
	fmt.Printf("  total: %d hosts expose verified control systems\n", total)

	// The trap: services on the CODESYS port vs verified CODESYS.
	onPort, _ := sys.Count(`services.port: 2455`)
	verified, _ := sys.Count(`services.service_name="CODESYS"`)
	fmt.Printf("\n== Port 2455: %d hosts listening, %d verified CODESYS ==\n", onPort, verified)
	fmt.Println("   (a port/keyword-labeling engine would report all of them as CODESYS)")

	// EPA workflow: find exposed water HMIs, produce the notification list.
	fmt.Println("\n== Exposed water-utility HMIs (unauthenticated HTTP) ==")
	hmis, err := sys.Search(`services.protocol: HTTP and services.http.title: "water"`)
	if err != nil {
		panic(err)
	}
	for _, h := range hmis {
		asn := ""
		if h.AS != nil {
			asn = h.AS.Org
		}
		fmt.Printf("  %-15s %-20s labels=%v\n", h.IP, asn, h.Labels)
	}
	fmt.Printf("%d utilities to notify\n", len(hmis))

	// Remediation tracking: utilities pull their HMIs offline; the daily
	// refresh prunes them within the 72h eviction window.
	fmt.Println("\n== After remediation (5 simulated days later) ==")
	for _, h := range hmis {
		sys.Internet().RemoveHost(h.IP)
	}
	sys.Run(5 * 24 * time.Hour)
	left, _ := sys.Count(`services.protocol: HTTP and services.http.title: "water"`)
	fmt.Printf("remaining exposed HMIs in the map: %d\n", left)
}
