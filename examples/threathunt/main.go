// Threat hunting (paper §7.2): pivot across the map to uncover related
// adversary infrastructure. Starting from one known C2 server, the hunt
// pivots on the certificate fingerprint and the JA4S fingerprint to find
// sibling servers, then watches for new infrastructure coming online.
//
//	go run ./examples/threathunt
package main

import (
	"fmt"
	"net/netip"
	"time"

	"censysmap"
	"censysmap/internal/protocols"
	"censysmap/internal/simnet"
	"censysmap/internal/x509lite"
)

func main() {
	sys, err := censysmap.NewSystem(censysmap.Options{
		Universe: netip.MustParsePrefix("10.0.0.0/21"),
		Seed:     99,
	})
	if err != nil {
		panic(err)
	}

	// Plant adversary infrastructure: four C2 servers sharing a self-signed
	// certificate, on scattered addresses and odd ports — exactly the
	// fingerprint-reuse mistake hunts exploit.
	c2Cert := selfSignedC2Cert(sys)
	c2Addrs := []string{"10.0.2.77", "10.0.5.13", "10.0.6.200"}
	for _, a := range c2Addrs {
		plantC2(sys, netip.MustParseAddr(a), 8443, c2Cert)
	}

	fmt.Println("mapping the universe (3 simulated days)...")
	sys.Run(3 * 24 * time.Hour)

	// The hunt starts from a single tip: one known-bad server.
	tip := netip.MustParseAddr(c2Addrs[0])
	host, ok := sys.Host(tip)
	if !ok {
		panic("tip host not mapped")
	}
	var fingerprint, ja4s string
	for _, svc := range host.ActiveServices() {
		if svc.CertSHA256 != "" {
			fingerprint = svc.CertSHA256
			ja4s = svc.Attributes["tls.ja4s"]
		}
	}
	fmt.Printf("\ntip: %v presents cert %s (JA4S %s)\n", tip, fingerprint[:16], ja4s)

	// Pivot 1: what other hosts present the same certificate?
	fmt.Println("\n== Pivot: certificate fingerprint ==")
	for _, loc := range sys.CertHosts(fingerprint) {
		fmt.Printf("  %s\n", loc)
	}

	// Pivot 2: search for the same JA4S fingerprint (catches re-keyed
	// servers with identical TLS stacks).
	fmt.Println("\n== Pivot: JA4S fingerprint ==")
	hosts, err := sys.Search(fmt.Sprintf(`services.tls.ja4s: %q`, ja4s))
	if err != nil {
		panic(err)
	}
	for _, h := range hosts {
		fmt.Printf("  %v\n", h.IP)
	}

	// Watch: new infrastructure coming online is caught by the continuous
	// pipeline; check the map again after the actor expands.
	fmt.Println("\n== Actor deploys a fourth server; pipeline keeps scanning ==")
	plantC2(sys, netip.MustParseAddr("10.0.7.142"), 4443, c2Cert)
	sys.Run(36 * time.Hour)
	locs := sys.CertHosts(fingerprint)
	fmt.Printf("cert now seen on %d servers:\n", len(locs))
	for _, loc := range locs {
		fmt.Printf("  %s\n", loc)
	}

	// The journal shows exactly when each server appeared — timeline
	// evidence for the incident report.
	fmt.Println("\n== Timeline (journal history of the new server) ==")
	for _, ev := range sys.History(netip.MustParseAddr("10.0.7.142")) {
		fmt.Printf("  %s %s\n", ev.Time.Format("Jan 02 15:04"), ev.Kind)
	}
}

// selfSignedC2Cert builds the shared self-signed certificate.
func selfSignedC2Cert(sys *censysmap.System) *x509lite.Certificate {
	name := x509lite.Name{CommonName: "update-cdn.invalid"}
	cert := &x509lite.Certificate{
		Serial: 31337, Subject: name, Issuer: name, KeyID: 0xC2C2,
		NotBefore: sys.Now().Add(-24 * time.Hour),
		NotAfter:  sys.Now().Add(365 * 24 * time.Hour),
		DNSNames:  []string{"update-cdn.invalid"},
	}
	cert.Sign(0xC2C2)
	return cert
}

// plantC2 injects a TLS HTTP "C2" host into the synthetic Internet.
func plantC2(sys *censysmap.System, addr netip.Addr, port uint16, cert *x509lite.Certificate) {
	sys.Internet().AddHost(&simnet.Host{
		Addr: addr, Country: "NL",
		Slots: []*simnet.Slot{{
			Port: port, Transport: "tcp",
			Spec: protocols.Spec{
				Protocol: "HTTP", Product: "nginx", Version: "1.18.0",
				Title: "404 Not Found", TLS: true,
				CertDER: cert.Encode(), CertSHA256: cert.FingerprintSHA256(),
			},
			Birth: sys.Now(),
		}},
	})
}
