// Attack surface management (paper §7.2): monitor an organization's address
// space, inventory its Internet exposure, flag risky services and known
// CVEs, and detect new assets appearing over time — the workflow that drives
// most commercial usage of the map.
//
//	go run ./examples/attacksurface
package main

import (
	"fmt"
	"net/netip"
	"time"

	"censysmap"
)

// The "organization" owns two prefixes of the universe (one on-prem block
// and one cloud block — companies typically have both).
var orgPrefixes = []netip.Prefix{
	netip.MustParsePrefix("10.0.0.0/26"), // cloud project
	netip.MustParsePrefix("10.0.4.0/24"), // on-prem range
}

func ownedBy(addr netip.Addr) bool {
	for _, p := range orgPrefixes {
		if p.Contains(addr) {
			return true
		}
	}
	return false
}

func main() {
	sys, err := censysmap.NewSystem(censysmap.Options{
		Universe: netip.MustParsePrefix("10.0.0.0/20"),
		Seed:     7,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("building the map (3 simulated days)...")
	sys.Run(3 * 24 * time.Hour)

	// Inventory: everything exposed in the org's ranges.
	inventory := snapshot(sys)
	fmt.Printf("\n== Exposure inventory: %d services on org prefixes ==\n", len(inventory))
	risky := 0
	for loc, svc := range inventory {
		risk := riskOf(svc)
		if risk != "" {
			risky++
			fmt.Printf("  [%s] %-18s %-8s %s\n", risk, loc, svc.Protocol, svc.Banner)
		}
	}
	fmt.Printf("%d of %d services flagged\n", risky, len(inventory))

	// CVE exposure via enrichment-derived software labels.
	fmt.Println("\n== Vulnerability exposure ==")
	for _, p := range orgPrefixes {
		for addr := p.Masked().Addr(); p.Contains(addr); addr = addr.Next() {
			h, ok := sys.Host(addr)
			if !ok || len(h.Vulns) == 0 {
				continue
			}
			fmt.Printf("  %v: %v (software: %v)\n", h.IP, h.Vulns, products(h))
		}
	}

	// Continuous monitoring: diff the perimeter a week later.
	fmt.Println("\n== Monitoring: one simulated week later ==")
	sys.Run(7 * 24 * time.Hour)
	current := snapshot(sys)
	newAssets, gone := 0, 0
	for loc, svc := range current {
		if _, known := inventory[loc]; !known {
			newAssets++
			fmt.Printf("  NEW   %-18s %-8s first_seen=%s\n", loc, svc.Protocol,
				svc.FirstSeen.Format("Jan 02 15:04"))
		}
	}
	for loc := range inventory {
		if _, still := current[loc]; !still {
			gone++
		}
	}
	fmt.Printf("%d new exposures, %d services removed\n", newAssets, gone)
}

// snapshot returns the org's current exposure keyed "ip port/transport".
func snapshot(sys *censysmap.System) map[string]*censysmap.Service {
	out := map[string]*censysmap.Service{}
	for _, rec := range sys.Services() {
		if !ownedBy(rec.Addr) {
			continue
		}
		h, ok := sys.Host(rec.Addr)
		if !ok {
			continue
		}
		for _, svc := range h.ActiveServices() {
			out[fmt.Sprintf("%v %s", rec.Addr, svc.Key())] = svc
		}
	}
	return out
}

// riskOf applies a small exposure policy, the kind ASM products ship.
func riskOf(svc *censysmap.Service) string {
	switch svc.Protocol {
	case "RDP", "TELNET", "VNC":
		return "HIGH "
	case "MODBUS", "S7", "BACNET", "DNP3", "FOX", "EIP", "ATG", "CODESYS", "FINS", "IEC104":
		return "CRIT "
	case "MYSQL", "REDIS":
		return "MED  "
	case "FTP":
		return "LOW  "
	}
	if svc.Protocol == "HTTP" && !svc.TLS && svc.Attributes["http.www_authenticate"] != "" {
		return "MED  " // basic-auth admin panel in the clear
	}
	return ""
}

func products(h *censysmap.Host) []string {
	var out []string
	for _, sw := range h.Software {
		out = append(out, sw.Product)
	}
	return out
}
