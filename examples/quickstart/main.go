// Quickstart: build a map of a small synthetic Internet, let the pipeline
// scan for two simulated days, and query it every way the system supports.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"net/netip"
	"time"

	"censysmap"
)

func main() {
	// 1. Build a system: a /21 universe (2048 addresses, ~200 hosts) and
	//    the full pipeline — discovery, interrogation, CQRS storage,
	//    enrichment, search.
	sys, err := censysmap.NewSystem(censysmap.Options{
		Universe: netip.MustParsePrefix("10.0.0.0/21"),
		Seed:     42,
	})
	if err != nil {
		panic(err)
	}

	// 2. Run two simulated days of continuous scanning (finishes in
	//    seconds of real time).
	fmt.Println("scanning for 2 simulated days...")
	sys.Run(48 * time.Hour)
	services := sys.Services()
	fmt.Printf("mapped %d services on %d web properties + hosts\n\n",
		len(services), len(sys.WebProperties()))

	// 3. Search with the Lucene-like query language.
	for _, q := range []string{
		`services.protocol: SSH`,
		`services.tls: true and location.country: DE`,
		`labels: ics`,
		`services.http.title: "Welcome to nginx"`,
		`services.port: [8000 TO 9000]`,
	} {
		n, err := sys.Count(q)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%4d hosts match %s\n", n, q)
	}

	// 4. Look up one host: current state, enriched with geo/ASN/software.
	addr := services[0].Addr
	host, _ := sys.Host(addr)
	fmt.Printf("\nhost %v (%s, AS%d):\n", host.IP, host.Location.Country, host.AS.Number)
	for _, svc := range host.ActiveServices() {
		fmt.Printf("  %-10s %-8s banner=%q\n", svc.Key(), svc.Protocol, svc.Banner)
	}
	if len(host.Software) > 0 {
		fmt.Printf("  software: %s\n", host.Software[0].CPE())
	}

	// 5. Time travel: the same host as it looked a day ago, replayed from
	//    the delta journal.
	past, ok := sys.HostAt(addr, sys.Now().Add(-24*time.Hour))
	if ok {
		fmt.Printf("  24h ago it exposed %d services; history has %d events\n",
			len(past.ActiveServices()), len(sys.History(addr)))
	}
}
