package censysmap

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"net/netip"
	"strings"
	"testing"
	"time"

	"censysmap/internal/core"
	"censysmap/internal/telemetry"
)

// TestMetricsEndpointPrometheus checks the default text exposition of
// GET /v2/metrics: content type, HELP/TYPE headers, and the presence of the
// core metric families a scraped dashboard would be built on.
func TestMetricsEndpointPrometheus(t *testing.T) {
	sys := smallSystem(t)
	sys.Run(26 * time.Hour)
	srv := httptest.NewServer(sys.APIHandler())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/v2/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("Content-Type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		"# HELP censys_core_ticks_total",
		"# TYPE censys_core_ticks_total counter",
		"censys_cqrs_events_total{kind=\"service_found\"}",
		"censys_discovery_probes_total{result=\"open\"}",
		"censys_search_result_cache_total{outcome=\"hit\"}",
		"censys_paper_coverage_ratio",
		"censys_paper_freshness_hours_bucket",
		"censys_journal_appends_total{partition=\"0\"}",
		// This request itself is counted before the snapshot is taken.
		"censys_lookup_requests_total{route=\"GET /v2/metrics\"}",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("text exposition missing %q", want)
		}
	}
}

// TestMetricsEndpointJSON checks the ?format=json exposition: it must parse
// into the snapshot+traces document, agree with the Go-level accessors, and
// carry sampled trace spans.
func TestMetricsEndpointJSON(t *testing.T) {
	sys, err := NewSystem(Options{
		Universe: netip.MustParsePrefix("10.0.0.0/22"),
		Seed:     7,
		Pipeline: core.Config{TraceSample: 1}, // trace every address
	})
	if err != nil {
		t.Fatal(err)
	}
	sys.Run(26 * time.Hour)
	srv := httptest.NewServer(sys.APIHandler())
	defer srv.Close()

	resp, err2 := srv.Client().Get(srv.URL + "/v2/metrics?format=json")
	if err2 != nil {
		t.Fatal(err2)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("Content-Type = %q", ct)
	}
	var doc struct {
		Metrics telemetry.Snapshot `json:"metrics"`
		Traces  []telemetry.Span   `json:"traces"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Metrics.Families) == 0 {
		t.Fatal("JSON exposition carries no metric families")
	}
	if !doc.Metrics.At.Equal(sys.Now()) {
		t.Errorf("snapshot stamped %v, sim clock is %v", doc.Metrics.At, sys.Now())
	}
	ticks, ok := doc.Metrics.Get("censys_core_ticks_total", nil)
	if !ok || ticks.Value == 0 {
		t.Fatalf("censys_core_ticks_total = %+v, ok=%v", ticks, ok)
	}
	cov, ok := doc.Metrics.Get("censys_paper_coverage_ratio", nil)
	if !ok || cov.Value <= 0 || cov.Value > 1.0 {
		t.Fatalf("censys_paper_coverage_ratio = %+v, ok=%v", cov, ok)
	}
	fresh, ok := doc.Metrics.Get("censys_paper_freshness_hours", nil)
	if !ok || fresh.Count == 0 || len(fresh.Buckets) == 0 {
		t.Fatalf("censys_paper_freshness_hours = %+v, ok=%v", fresh, ok)
	}
	if len(doc.Traces) == 0 {
		t.Fatal("no trace spans in JSON exposition")
	}
	if got := sys.Traces(); len(got) != len(doc.Traces) {
		t.Errorf("HTTP traces = %d, System.Traces = %d", len(doc.Traces), len(got))
	}
	for _, span := range doc.Traces {
		for i := 1; i < len(span.Events); i++ {
			if span.Events[i].Time.Before(span.Events[i-1].Time) {
				t.Fatalf("span %s events out of order at %d", span.Target, i)
			}
		}
	}
}

// TestMetricsDisabled: with DisableTelemetry the pipeline runs bare — no
// registry, no snapshot families, and /v2/metrics answers 404.
func TestMetricsDisabled(t *testing.T) {
	sys, err := NewSystem(Options{
		Universe:         netip.MustParsePrefix("10.0.0.0/23"),
		Seed:             7,
		DisableTelemetry: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	sys.Run(4 * time.Hour)
	if sys.Metrics() != nil {
		t.Fatal("DisableTelemetry left a registry attached")
	}
	if snap := sys.MetricsSnapshot(); len(snap.Families) != 0 {
		t.Fatalf("disabled snapshot has %d families", len(snap.Families))
	}
	srv := httptest.NewServer(sys.APIHandler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/v2/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Fatalf("disabled /v2/metrics status = %d, want 404", resp.StatusCode)
	}
}
