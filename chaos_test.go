package censysmap

import (
	"encoding/json"
	"net/netip"
	"testing"
	"time"

	"censysmap/internal/chaos"
	"censysmap/internal/core"
	"censysmap/internal/simnet"
)

// chaosSystem builds a small System with ambient simnet noise off, a mild
// chaos injector attached, and the retry ladder on — the facade-level
// version of the internal/chaos lab setup.
func chaosSystem(t *testing.T, seed uint64) (*System, core.Config) {
	t.Helper()
	ncfg := simnet.DefaultConfig()
	ncfg.Prefix = netip.MustParsePrefix("10.60.0.0/24")
	ncfg.Seed = seed
	ncfg.CloudBlocks = 1
	ncfg.WebProperties = 8
	ncfg.BaseLoss = 0
	ncfg.OutageRate = 0
	ncfg.GeoblockRate = 0

	pcfg := core.DefaultConfig()
	pcfg.CloudBlocks = 1
	pcfg.SnapshotEvery = 4
	pcfg.RetryPolicy = core.RetryPolicy{MaxRetries: 2, BaseDelay: pcfg.Tick, MaxDelay: 4 * pcfg.Tick}

	sys, err := NewSystem(Options{Network: &ncfg, Pipeline: pcfg})
	if err != nil {
		t.Fatal(err)
	}
	// The seed scan has already run by now (NewSystem starts the pipeline);
	// both the baseline and the crashed run attach at the same point, so
	// the comparison stays aligned.
	sys.Internet().SetFaultInjector(chaos.New(chaos.Mild(seed)))
	return sys, pcfg
}

// TestSystemCrashRecoveryUnderChaos exercises the public crash-recovery
// surface end to end: Checkpoint + Durable off a running System, a JSON
// trip across the "process boundary", core.Resume, and a differential
// comparison against the System that never crashed.
func TestSystemCrashRecoveryUnderChaos(t *testing.T) {
	const ticks, crashAt = 26, 9

	base, _ := chaosSystem(t, 77)
	base.Run(ticks * time.Hour)

	sys, pcfg := chaosSystem(t, 77)
	sys.Run(crashAt * time.Hour)

	cp := sys.Map().Checkpoint()
	d := sys.Map().Durable()
	sys.Map().Stop()

	blob, err := json.Marshal(cp)
	if err != nil {
		t.Fatal(err)
	}
	var restored core.Checkpoint
	if err := json.Unmarshal(blob, &restored); err != nil {
		t.Fatal(err)
	}

	m2, err := core.Resume(pcfg, sys.Internet(), d, restored)
	if err != nil {
		t.Fatal(err)
	}
	m2.Start()
	sys.Clock().Advance((ticks - crashAt) * time.Hour)

	want, err := chaos.Observe(base.Map())
	if err != nil {
		t.Fatal(err)
	}
	got, err := chaos.Observe(m2)
	if err != nil {
		t.Fatal(err)
	}
	if diff := chaos.Diff(want, got); len(diff) > 0 {
		t.Fatalf("resumed System diverged from uninterrupted System: %v", diff)
	}
	if len(got.Services) == 0 {
		t.Fatal("no services found; universe too quiet for the test to mean anything")
	}
}
